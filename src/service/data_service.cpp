#include "service/data_service.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/offline_dp.h"
#include "obs/observer.h"
#include "obs/scoped_timer.h"
#include "util/annotate.h"
#include "util/contracts.h"
#include "util/table.h"

namespace mcdc {

std::string ItemOutcome::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "item " << item << ": born s" << origin + 1 << "@" << birth << ", "
     << requests << " requests, " << hits << " hits, " << transfers
     << " transfers, cost " << cost << " (caching " << caching_cost
     << " + transfer " << transfer_cost << ")";
  return os.str();
}

std::string ServiceReport::to_string(std::size_t max_items) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << items << " items, " << requests << " requests: total cost "
     << total_cost << " (caching " << caching_cost << " + transfer "
     << transfer_cost << ")";
  if (per_item.empty()) return os.str();

  std::vector<const ItemOutcome*> by_cost;
  by_cost.reserve(per_item.size());
  for (const auto& it : per_item) by_cost.push_back(&it);
  std::sort(by_cost.begin(), by_cost.end(),
            [](const ItemOutcome* a, const ItemOutcome* b) {
              if (a->cost != b->cost) return a->cost > b->cost;
              return a->item < b->item;
            });
  const std::size_t shown =
      max_items == 0 ? by_cost.size() : std::min(max_items, by_cost.size());

  Table t({"item", "origin", "born", "requests", "hits", "transfers",
           "caching", "transfer", "cost"});
  for (std::size_t i = 0; i < shown; ++i) {
    const ItemOutcome& it = *by_cost[i];
    t.add_row({std::to_string(it.item), "s" + std::to_string(it.origin + 1),
               Table::num(it.birth), Table::integer(static_cast<long long>(it.requests)),
               Table::integer(static_cast<long long>(it.hits)),
               Table::integer(static_cast<long long>(it.transfers)),
               Table::num(it.caching_cost), Table::num(it.transfer_cost),
               Table::num(it.cost)});
  }
  os << "\n" << t.render();
  if (shown < by_cost.size()) {
    os << "(+" << by_cost.size() - shown << " more items by cost)\n";
  }
  return os.str();
}

MCDC_DETERMINISTIC
void finalize_report(ServiceReport& rep) {
  rep.total_cost = 0.0;
  rep.caching_cost = 0.0;
  rep.transfer_cost = 0.0;
  rep.requests = 0;
  rep.items = rep.per_item.size();
  for (const auto& it : rep.per_item) {
    MCDC_INVARIANT(almost_equal(it.caching_cost + it.transfer_cost, it.cost),
                   "item %d: caching %.12g + transfer %.12g != cost %.12g",
                   it.item, it.caching_cost, it.transfer_cost, it.cost);
    rep.total_cost += it.cost;
    rep.caching_cost += it.caching_cost;
    rep.transfer_cost += it.transfer_cost;
    rep.requests += it.requests;
  }
  MCDC_INVARIANT(almost_equal(rep.caching_cost + rep.transfer_cost,
                              rep.total_cost),
                 "aggregate reconciliation: caching %.12g + transfer %.12g != "
                 "total %.12g over %zu items",
                 rep.caching_cost, rep.transfer_cost, rep.total_cost,
                 rep.items);
}

std::vector<ItemInstance> service_instances(const std::vector<MultiItemRequest>& stream,
                                            int num_servers) {
  struct Builder {
    ServerId origin = kNoServer;
    Time birth = 0.0;
    std::vector<Request> requests;
  };
  std::map<int, Builder> builders;
  Time prev = -1.0;
  for (const auto& r : stream) {
    if (r.server < 0 || r.server >= num_servers) {
      throw std::invalid_argument("service_instances: server out of range");
    }
    if (!(r.time > prev)) {
      throw std::invalid_argument("service_instances: times must strictly increase");
    }
    prev = r.time;
    auto [it, inserted] = builders.try_emplace(r.item);
    if (inserted) {
      it->second.origin = r.server;
      it->second.birth = r.time;
    } else {
      it->second.requests.push_back({r.server, r.time - it->second.birth});
    }
  }
  std::vector<ItemInstance> out;
  out.reserve(builders.size());
  for (auto& [item, b] : builders) {
    out.push_back(ItemInstance{item, b.origin, b.birth,
                               RequestSequence(num_servers, std::move(b.requests),
                                               b.origin)});
  }
  return out;
}

ServiceReport plan_offline_service(const std::vector<MultiItemRequest>& stream,
                                   int num_servers, const CostModel& cm,
                                   obs::Observer* observer) {
  ServiceReport rep;
  OfflineDpOptions dp_options;
  dp_options.observer = observer;
  for (auto& inst : service_instances(stream, num_servers)) {
    auto res = solve_offline(inst.sequence, cm, dp_options);
    ItemOutcome item;
    item.item = inst.item;
    item.origin = inst.origin;
    item.birth = inst.birth;
    item.requests = static_cast<std::size_t>(inst.sequence.n());
    item.cost = res.optimal_cost;
    item.transfer_cost =
        cm.lambda * static_cast<double>(res.schedule.transfers().size());
    item.caching_cost = item.cost - item.transfer_cost;
    item.transfers = res.schedule.transfers().size();
    item.schedule = std::move(res.schedule);
    rep.per_item.push_back(std::move(item));
  }
  finalize_report(rep);
  return rep;
}

OnlineDataService::OnlineDataService(int num_servers,
                                     const ServingCostModel& cm,
                                     const SpeculativeCachingOptions& options)
    : num_servers_(num_servers), cm_(cm), options_(options) {
  if (num_servers <= 0) {
    throw std::invalid_argument("OnlineDataService: need at least one server");
  }
  if (cm_.het() != nullptr && cm_.het()->m() != num_servers) {
    throw std::invalid_argument(
        "OnlineDataService: heterogeneous model is sized for " +
        std::to_string(cm_.het()->m()) + " servers, service for " +
        std::to_string(num_servers));
  }
}

MCDC_NO_ALLOC MCDC_HOT_PATH
bool OnlineDataService::request(int item, ServerId server, Time time) {
  obs::Observer* ob = options_.observer;
  obs::ScopedTimer latency_timer(ob != nullptr ? ob->request_latency_us()
                                               : nullptr);
  if (finished_) throw std::logic_error("OnlineDataService: already finished");
  if (server < 0 || server >= num_servers_) {
    throw std::invalid_argument("OnlineDataService: server out of range");
  }
  if (time < last_time_) {
    throw std::invalid_argument("OnlineDataService: times must be non-decreasing");
  }
  last_time_ = time;

  const int slot = index_.find(item);
  if (slot < 0) {
    // Birth: the item materializes on the requesting server (client
    // upload); the request is served locally. The per-item cache inherits
    // the service options with its trace context (item id, absolute birth
    // time) filled in, so every item's events land in one coherent stream.
    // The state is constructed in place inside the service-owned slab —
    // no per-item unique_ptr, one chunk allocation per kChunk births.
    SpeculativeCachingOptions per_item = options_;
    per_item.trace_item = item;
    per_item.trace_time_offset = time;
    const std::size_t idx =
        items_.emplace(item, server, time, num_servers_, cm_, per_item);
    index_.insert(item, static_cast<int>(idx));
    if (ob != nullptr) {
      ob->set_items_live(items_.size());
      ob->request_served(item, 0, server, time, /*hit=*/true, 0.0, 1);
    }
    return true;
  }
  ItemState& state = items_[static_cast<std::size_t>(slot)];
  state.last_time = time;
  ++state.requests;
  return state.cache.observe(server, time - state.birth);
}

MCDC_NO_ALLOC MCDC_HOT_PATH
std::size_t OnlineDataService::request_span(
    std::span<const MultiItemRequest> batch) {
  // Two-stage software pipeline over the span. Consecutive records almost
  // never share an item, so each request's index bucket and ItemState sit
  // in cold cache lines; the span gives us the lookahead to start those
  // loads early. Stage A touches the index bucket kBucketAhead records
  // out (prefetch only — no dependent load, so it cannot stall); stage B,
  // kStateAhead out, resolves the slot against the now-warm bucket and
  // prefetches the head of the ItemState; stage C runs the request with
  // both lines in flight or resident. The find in stage B is repeated by
  // stage C's request() — that re-probe is a handful of cycles against a
  // warm line, far cheaper than the miss it hides. A stage-B miss (slot
  // -1: the record is a birth) prefetches nothing; request() handles the
  // birth exactly as the unbatched path does.
  constexpr std::size_t kBucketAhead = 12;
  constexpr std::size_t kStateAhead = 4;
  std::size_t local = 0;
  const std::size_t n = batch.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kBucketAhead < n) index_.prefetch(batch[i + kBucketAhead].item);
    if (i + kStateAhead < n) {
      const int slot = index_.find(batch[i + kStateAhead].item);
      if (slot >= 0) {
#if defined(__GNUC__) || defined(__clang__)
        const char* p = reinterpret_cast<const char*>(
            &items_[static_cast<std::size_t>(slot)]);
        __builtin_prefetch(p);
        __builtin_prefetch(p + 64);
#endif
      }
    }
    const MultiItemRequest& r = batch[i];
    if (request(r.item, r.server, r.time)) ++local;
  }
  return local;
}

ServiceReport OnlineDataService::finish() {
  if (finished_) throw std::logic_error("OnlineDataService: already finished");
  finished_ = true;
  obs::Observer* ob = options_.observer;
  if (ob != nullptr) {
    // Peak footprint, sampled before teardown releases the recording
    // vectors into the report.
    ob->set_service_resident_bytes(resident_bytes());
    ob->set_items_live(items_.size());
  }
  ServiceReport rep;
  rep.per_item.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    ItemState& state = items_[i];
    state.cache.finish(state.last_time - state.birth);
    OnlineScResult res = state.cache.take_result();
    ItemOutcome out;
    out.item = state.item;
    out.origin = state.origin;
    out.birth = state.birth;
    out.requests = state.requests;
    out.cost = res.total_cost;
    out.caching_cost = res.caching_cost;
    out.transfer_cost = res.transfer_cost;
    out.transfers = res.misses;
    out.hits = res.hits;
    out.schedule = std::move(res.schedule);
    rep.per_item.push_back(std::move(out));
  }
  // The slab holds items in birth order; restore ascending item id — the
  // summation order the pre-slab std::map produced and the engine merge
  // reproduces for bit-identical totals.
  std::sort(rep.per_item.begin(), rep.per_item.end(),
            [](const ItemOutcome& a, const ItemOutcome& b) {
              return a.item < b.item;
            });
  finalize_report(rep);
  return rep;
}

std::size_t OnlineDataService::resident_bytes() const {
  std::size_t bytes =
      sizeof(*this) + index_.heap_bytes() + items_.heap_bytes();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    bytes += items_[i].cache.heap_bytes();
  }
  return bytes;
}

}  // namespace mcdc
