#include "service/data_service.h"

#include <stdexcept>

#include "core/offline_dp.h"

namespace mcdc {

std::vector<ItemInstance> service_instances(const std::vector<MultiItemRequest>& stream,
                                            int num_servers) {
  struct Builder {
    ServerId origin = kNoServer;
    Time birth = 0.0;
    std::vector<Request> requests;
  };
  std::map<int, Builder> builders;
  Time prev = -1.0;
  for (const auto& r : stream) {
    if (r.server < 0 || r.server >= num_servers) {
      throw std::invalid_argument("service_instances: server out of range");
    }
    if (!(r.time > prev)) {
      throw std::invalid_argument("service_instances: times must strictly increase");
    }
    prev = r.time;
    auto [it, inserted] = builders.try_emplace(r.item);
    if (inserted) {
      it->second.origin = r.server;
      it->second.birth = r.time;
    } else {
      it->second.requests.push_back({r.server, r.time - it->second.birth});
    }
  }
  std::vector<ItemInstance> out;
  out.reserve(builders.size());
  for (auto& [item, b] : builders) {
    out.push_back(ItemInstance{item, b.origin, b.birth,
                               RequestSequence(num_servers, std::move(b.requests),
                                               b.origin)});
  }
  return out;
}

ServiceReport plan_offline_service(const std::vector<MultiItemRequest>& stream,
                                   int num_servers, const CostModel& cm) {
  ServiceReport rep;
  for (auto& inst : service_instances(stream, num_servers)) {
    const auto res = solve_offline(inst.sequence, cm);
    ItemOutcome item;
    item.item = inst.item;
    item.origin = inst.origin;
    item.birth = inst.birth;
    item.requests = static_cast<std::size_t>(inst.sequence.n());
    item.cost = res.optimal_cost;
    item.transfer_cost =
        cm.lambda * static_cast<double>(res.schedule.transfers().size());
    item.caching_cost = item.cost - item.transfer_cost;
    item.transfers = res.schedule.transfers().size();
    item.schedule = res.schedule;
    rep.total_cost += item.cost;
    rep.caching_cost += item.caching_cost;
    rep.transfer_cost += item.transfer_cost;
    rep.requests += item.requests;
    ++rep.items;
    rep.per_item.push_back(std::move(item));
  }
  return rep;
}

OnlineDataService::OnlineDataService(int num_servers, const CostModel& cm,
                                     const SpeculativeCachingOptions& options)
    : num_servers_(num_servers), cm_(cm), options_(options) {
  if (num_servers <= 0) {
    throw std::invalid_argument("OnlineDataService: need at least one server");
  }
}

bool OnlineDataService::request(int item, ServerId server, Time time) {
  if (finished_) throw std::logic_error("OnlineDataService: already finished");
  if (server < 0 || server >= num_servers_) {
    throw std::invalid_argument("OnlineDataService: server out of range");
  }
  if (!(time > last_time_)) {
    throw std::invalid_argument("OnlineDataService: times must strictly increase");
  }
  last_time_ = time;

  auto [it, inserted] = items_.try_emplace(item);
  ItemState& state = it->second;
  if (inserted) {
    // Birth: the item materializes on the requesting server (client
    // upload); the request is served locally.
    state.cache = std::make_unique<SpeculativeCache>(num_servers_, server, cm_,
                                                     options_);
    state.origin = server;
    state.birth = time;
    state.last_time = time;
    return true;
  }
  state.last_time = time;
  ++state.requests;
  return state.cache->observe(server, time - state.birth);
}

ServiceReport OnlineDataService::finish() {
  if (finished_) throw std::logic_error("OnlineDataService: already finished");
  finished_ = true;
  ServiceReport rep;
  for (auto& [item, state] : items_) {
    state.cache->finish(state.last_time - state.birth);
    const OnlineScResult res = state.cache->take_result();
    ItemOutcome out;
    out.item = item;
    out.origin = state.origin;
    out.birth = state.birth;
    out.requests = state.requests;
    out.cost = res.total_cost;
    out.caching_cost = res.caching_cost;
    out.transfer_cost = res.transfer_cost;
    out.transfers = res.misses;
    out.hits = res.hits;
    out.schedule = res.schedule;
    rep.total_cost += out.cost;
    rep.caching_cost += out.caching_cost;
    rep.transfer_cost += out.transfer_cost;
    rep.requests += out.requests;
    ++rep.items;
    rep.per_item.push_back(std::move(out));
  }
  return rep;
}

}  // namespace mcdc
