#include "obs/export.h"

#include <cstdio>

namespace mcdc::obs {

namespace {

/// Shortest round-trippable decimal (same policy as the metrics JSON).
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  char shorter[32];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0.0;
  if (std::sscanf(shorter, "%lf", &back) == 1 && back == v) return shorter;
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// Nanoseconds on the telemetry clock -> trace microseconds.
std::string us_from_ns(std::uint64_t ns) {
  return num(static_cast<double>(ns) / 1000.0);
}

}  // namespace

void ChromeTraceBuilder::append_raw(const std::string& obj) {
  if (n_ > 0) body_ += ',';
  body_ += obj;
  ++n_;
}

void ChromeTraceBuilder::add_process(int pid, const std::string& name) {
  append_raw("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
             json_str(name) + "}}");
}

void ChromeTraceBuilder::add_thread(int pid, int tid,
                                    const std::string& name) {
  append_raw("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
             ",\"args\":{\"name\":" + json_str(name) + "}}");
}

void ChromeTraceBuilder::add_span(int pid, int tid,
                                  const TelemetrySpan& span) {
  std::string obj = "{\"name\":" + json_str(span.name) +
                    ",\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) +
                    ",\"ts\":" + us_from_ns(span.start_ns) +
                    ",\"dur\":" + us_from_ns(span.dur_ns);
  if (span.weight > 0) {
    obj += ",\"args\":{\"records\":" + std::to_string(span.weight) + "}";
  }
  obj += '}';
  append_raw(obj);
}

void ChromeTraceBuilder::add_counter(int pid, const std::string& name,
                                     std::uint64_t t_ns, double value) {
  append_raw("{\"name\":" + json_str(name) + ",\"ph\":\"C\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"ts\":" + us_from_ns(t_ns) +
             ",\"args\":{\"value\":" + num(value) + "}}");
}

void ChromeTraceBuilder::add_instant(int pid, int tid, const char* name,
                                     double ts_us) {
  append_raw("{\"name\":" + json_str(name) + ",\"ph\":\"i\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
             ",\"ts\":" + num(ts_us) + ",\"s\":\"t\"}");
}

void ChromeTraceBuilder::add_event(int pid, int tid, const Event& e) {
  std::string obj = "{\"name\":" + json_str(event_kind_name(e.kind)) +
                    ",\"ph\":\"i\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) +
                    ",\"ts\":" + num(e.at * 1e6) + ",\"s\":\"t\"" +
                    ",\"args\":{\"item\":" + std::to_string(e.item) +
                    ",\"server\":" + std::to_string(e.server) +
                    ",\"cost_delta\":" + num(e.cost_delta);
  if (e.kind == EventKind::kRequestServed) {
    obj += e.hit ? ",\"hit\":true" : ",\"hit\":false";
  }
  obj += "}}";
  append_raw(obj);
}

std::string ChromeTraceBuilder::json() const {
  return "{\"traceEvents\":[" + body_ + "],\"displayTimeUnit\":\"ms\"}";
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + num(v) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cum += h.counts[i];
      out += name + "_bucket{le=\"" + num(h.upper_bounds[i]) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + num(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  for (const auto& [name, h] : snap.latency) {
    // Log2 ns buckets; collapse the empty tail by stopping at the last
    // occupied bucket (the +Inf row still carries the full count).
    out += "# TYPE " + name + " histogram\n";
    int last = -1;
    for (int b = 0; b < kLatencyBuckets; ++b) {
      if (h.counts[static_cast<std::size_t>(b)] > 0) last = b;
    }
    std::uint64_t cum = 0;
    for (int b = 0; b <= last; ++b) {
      cum += h.counts[static_cast<std::size_t>(b)];
      out += name + "_bucket{le=\"" +
             std::to_string(LatencyHistogramSnapshot::bucket_ceil_ns(b)) +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum_ns) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace mcdc::obs
