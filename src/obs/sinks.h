// Concrete TraceSink implementations.
//
//  * JsonlSink      — one JSON object per line, to a borrowed std::ostream
//                     or an owned file. The schema is documented in
//                     docs/OBSERVABILITY.md and round-trips through any
//                     JSON parser (tests parse it back line by line).
//  * RingBufferSink — fixed-capacity in-memory buffer keeping the newest
//                     events; per-kind totals cover *all* events seen, so
//                     reconciliation checks survive overflow. The sink of
//                     choice for tests and the overhead bench.
//  * LockedSink     — mutex decorator making any sink safe to share across
//                     threads. Single-threaded emitters (every solver, the
//                     serial service) stay lock-free by not using it; the
//                     sharded streaming engine wraps the user's sink in one
//                     so per-shard event streams interleave without racing.
//
// The zero-overhead "tracing off" path is a null sink *pointer* (see
// obs::Observer), not a NullSink instance: with no observer attached the
// instrumented code does one pointer test and nothing else.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.h"

namespace mcdc::obs {

/// Streams events as JSON Lines.
class JsonlSink final : public TraceSink {
 public:
  /// Write to a stream owned by the caller (kept alive past the sink).
  explicit JsonlSink(std::ostream& out);
  /// Open `path` for writing; ok() reports whether the open succeeded.
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  bool ok() const;
  std::size_t written() const { return written_; }

  void on_event(const Event& e) override;

  /// One event as a single-line JSON object (no trailing newline).
  static std::string to_json(const Event& e);

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
  std::size_t written_ = 0;
};

/// Keeps the newest `capacity` events in memory.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void on_event(const Event& e) override;

  /// Retained events, oldest first.
  std::vector<Event> events() const;

  std::size_t seen() const { return seen_; }
  std::size_t dropped() const {
    return seen_ > buf_.size() ? seen_ - buf_.size() : 0;
  }
  /// Total events of `k` seen (not just retained).
  std::uint64_t count(EventKind k) const {
    return kind_counts_[static_cast<std::size_t>(k)];
  }

  void clear();

 private:
  std::size_t capacity_;
  std::vector<Event> buf_;   // grows to capacity_, then wraps via next_
  std::size_t next_ = 0;     // insertion cursor once full
  std::size_t seen_ = 0;
  std::array<std::uint64_t, kNumEventKinds> kind_counts_{};
};

/// Serializes on_event() calls onto a wrapped sink. The inner sink is
/// borrowed and must outlive the decorator.
class LockedSink final : public TraceSink {
 public:
  explicit LockedSink(TraceSink* inner) : inner_(inner) {}

  void on_event(const Event& e) override {
    if (inner_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->on_event(e);
  }

 private:
  std::mutex mu_;
  TraceSink* inner_ = nullptr;
};

}  // namespace mcdc::obs
