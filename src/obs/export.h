// Telemetry exporters: Chrome-trace/Perfetto JSON and Prometheus text.
//
// ChromeTraceBuilder assembles one chrome://tracing / Perfetto-loadable
// JSON document from heterogeneous telemetry: wall-clock stage spans
// (SpanRing contents, "X" events), sampler series ("C" counter events),
// and instant markers derived from the obs::Event stream ("i" events).
// Engine wall-clock tracks and model-time event tracks live under
// separate pids so the two timebases never share an axis — the engine
// groups its shards under one "process", the service event stream under
// another (docs/OBSERVABILITY.md, "Chrome-trace export").
//
// to_prometheus() renders a whole MetricsSnapshot in the Prometheus text
// exposition format (the wire format a future /metrics endpoint serves):
// counters and gauges verbatim, obs::Histogram as cumulative
// `_bucket{le=...}` rows in its native unit, and LatencyHistogram the
// same way with `le` in integer nanoseconds (names carry the `_ns`
// suffix, so the unit is explicit).
#pragma once

#include <cstdint>
#include <string>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace mcdc::obs {

class ChromeTraceBuilder {
 public:
  /// Metadata: name the pid group / the tid track inside it.
  void add_process(int pid, const std::string& name);
  void add_thread(int pid, int tid, const std::string& name);

  /// Complete span ("X"); timestamps on the telemetry_now_ns timeline.
  /// `weight` > 0 is attached as args.records.
  void add_span(int pid, int tid, const TelemetrySpan& span);

  /// Counter sample ("C"): one series per name within a pid.
  void add_counter(int pid, const std::string& name, std::uint64_t t_ns,
                   double value);

  /// Instant marker ("i", thread scope) at an explicit microsecond
  /// timestamp (callers pick the timebase; see add_event).
  void add_instant(int pid, int tid, const char* name, double ts_us);

  /// One traced service event as an instant marker on a *model-time*
  /// track: ts is e.at in seconds rendered as microseconds, so a trace
  /// second reads as a viewer microsecond. Keep these under their own
  /// pid — model time and wall time must not share a track group.
  void add_event(int pid, int tid, const Event& e);

  std::size_t events() const { return n_; }

  /// The finished document: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string json() const;

 private:
  void append_raw(const std::string& obj);

  std::string body_;
  std::size_t n_ = 0;
};

/// Prometheus text exposition of everything the snapshot holds.
std::string to_prometheus(const MetricsSnapshot& snap);

}  // namespace mcdc::obs
