// RAII profiling scope feeding a metrics histogram.
//
// Construct with the target histogram; destruction records the elapsed
// wall time in microseconds. A null histogram disables the scope — the
// usual pattern at instrumentation sites is
//
//   obs::ScopedTimer t(observer ? observer->request_latency_us() : nullptr);
//
// so the disabled path pays only null tests — the clock is not read at
// all (a steady_clock read is ~20ns, which alone would blow the <2%
// overhead budget on the per-request path).
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace mcdc::obs {

class ScopedTimer {
  // The start point is value-initialized (clock epoch) rather than wrapped
  // in std::optional: the disabled path still never reads the clock, and
  // GCC's -Wmaybe-uninitialized cannot see through optional's engaged flag
  // here (it fired on every call site under the strict warning set).
  using Clock = std::chrono::steady_clock;

 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->observe(static_cast<double>(elapsed_ns()) * 1e-3);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed µs so far; 0 when the scope is disabled.
  double micros() const {
    return hist_ != nullptr ? static_cast<double>(elapsed_ns()) * 1e-3 : 0.0;
  }

 private:
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  Histogram* hist_;
  Clock::time_point start_{};
};

}  // namespace mcdc::obs
