// RAII profiling scope feeding a metrics histogram.
//
// Construct with the target histogram; destruction records the elapsed
// wall time in microseconds. A null histogram disables the scope — the
// usual pattern at instrumentation sites is
//
//   obs::ScopedTimer t(observer ? observer->request_latency_us() : nullptr);
//
// so the disabled path pays only null tests — the clock is not read at
// all (a steady_clock read is ~20ns, which alone would blow the <2%
// overhead budget on the per-request path).
#pragma once

#include <optional>

#include "obs/metrics.h"
#include "util/timer.h"

namespace mcdc::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) timer_.emplace();
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->observe(static_cast<double>(timer_->elapsed_ns()) * 1e-3);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed µs so far; 0 when the scope is disabled.
  double micros() const { return timer_ ? timer_->micros() : 0.0; }

 private:
  Histogram* hist_;
  std::optional<Timer> timer_;
};

}  // namespace mcdc::obs
