// Observer: the single handle instrumented code holds.
//
// Bundles an optional MetricsRegistry and an optional TraceSink behind one
// pointer. Construction registers the standard metric set once and caches
// the returned handles, so every hook is a couple of cached-pointer updates
// plus (when a sink is attached) one virtual call — no map lookups, no
// allocation, nothing on the hot path that scales with registry size.
//
// Attachment points:
//   SpeculativeCachingOptions::observer  — SC + OnlineDataService
//   OfflineDpOptions::observer           — the off-line DP stages
//   execute_schedule(..., observer)      — the discrete-event replay
//
// An absent observer (nullptr, the default everywhere) costs one branch per
// instrumentation site. Standard metric names are listed in
// docs/OBSERVABILITY.md.
#pragma once

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/annotate.h"

namespace mcdc::obs {

class Observer {
 public:
  Observer() = default;

  explicit Observer(MetricsRegistry* metrics, TraceSink* sink = nullptr)
      : metrics_(metrics), sink_(sink) {
    if (metrics_ == nullptr) return;
    requests_served_ = &metrics_->counter("requests_served");
    cache_hits_ = &metrics_->counter("cache_hits");
    cache_misses_ = &metrics_->counter("cache_misses");
    transfers_issued_ = &metrics_->counter("transfers_issued");
    copies_born_ = &metrics_->counter("copies_born");
    copies_expired_ = &metrics_->counter("copies_expired");
    epoch_resets_ = &metrics_->counter("epoch_resets");
    dp_stages_ = &metrics_->counter("dp_stages");
    replicas_alive_ = &metrics_->gauge("replicas_alive");
    items_live_ = &metrics_->gauge("items_live");
    service_resident_bytes_ = &metrics_->gauge("service_resident_bytes");
    // µs scale: 1µs .. ~4s.
    request_latency_us_ = &metrics_->histogram(
        "request_latency_us", Histogram::exponential_bounds(1.0, 4.0, 12));
    dp_stage_us_ = &metrics_->histogram(
        "dp_stage_us", Histogram::exponential_bounds(1.0, 4.0, 12));
    executor_replay_us_ = &metrics_->histogram(
        "executor_replay_us", Histogram::exponential_bounds(1.0, 4.0, 12));
    // Cost in lambda-ish units; 0 hits the first bucket via underflow bound.
    cost_per_request_ = &metrics_->histogram(
        "cost_per_request", Histogram::exponential_bounds(0.125, 2.0, 12));
    replicas_per_request_ = &metrics_->histogram(
        "replicas_per_request", {1, 2, 4, 8, 16, 32, 64, 128});
  }

  MetricsRegistry* metrics() const { return metrics_; }
  TraceSink* sink() const { return sink_; }

  // --- instrumentation hooks -------------------------------------------

  MCDC_ALLOC_OK("sink tracing is opt-in diagnostics; the metrics side is atomics only")
  void request_served(int item, RequestIndex request, ServerId server, Time at,
                      bool hit, Cost cost_delta, std::size_t replicas_alive) {
    if (metrics_ != nullptr) {
      requests_served_->inc();
      (hit ? cache_hits_ : cache_misses_)->inc();
      cost_per_request_->observe(cost_delta);
      replicas_per_request_->observe(static_cast<double>(replicas_alive));
      replicas_alive_->set(static_cast<double>(replicas_alive));
    }
    if (sink_ != nullptr) {
      Event e;
      e.kind = EventKind::kRequestServed;
      e.item = item;
      e.request = request;
      e.server = server;
      e.at = at;
      e.hit = hit;
      e.cost_delta = cost_delta;
      sink_->on_event(e);
    }
  }

  MCDC_ALLOC_OK("sink tracing is opt-in diagnostics; the metrics side is atomics only")
  void transfer_issued(int item, RequestIndex request, ServerId from,
                       ServerId to, Time at, Cost cost_delta) {
    if (metrics_ != nullptr) transfers_issued_->inc();
    if (sink_ != nullptr) {
      Event e;
      e.kind = EventKind::kTransferIssued;
      e.item = item;
      e.request = request;
      e.server = to;
      e.from = from;
      e.at = at;
      e.cost_delta = cost_delta;
      sink_->on_event(e);
    }
  }

  MCDC_ALLOC_OK("sink tracing is opt-in diagnostics; the metrics side is atomics only")
  void copy_born(int item, ServerId server, Time at) {
    if (metrics_ != nullptr) copies_born_->inc();
    if (sink_ != nullptr) {
      Event e;
      e.kind = EventKind::kCopyBorn;
      e.item = item;
      e.server = server;
      e.at = at;
      sink_->on_event(e);
    }
  }

  MCDC_ALLOC_OK("sink tracing is opt-in diagnostics; the metrics side is atomics only")
  void copy_expired(int item, ServerId server, Time at, bool expired,
                    Cost cost_delta) {
    if (metrics_ != nullptr) copies_expired_->inc();
    if (sink_ != nullptr) {
      Event e;
      e.kind = EventKind::kCopyExpired;
      e.item = item;
      e.server = server;
      e.at = at;
      e.expired = expired;
      e.cost_delta = cost_delta;
      sink_->on_event(e);
    }
  }

  MCDC_ALLOC_OK("sink tracing is opt-in diagnostics; the metrics side is atomics only")
  void epoch_reset(int item, Time at) {
    if (metrics_ != nullptr) epoch_resets_->inc();
    if (sink_ != nullptr) {
      Event e;
      e.kind = EventKind::kEpochReset;
      e.item = item;
      e.at = at;
      sink_->on_event(e);
    }
  }

  /// `stage` must point to static storage (a string literal).
  void dp_stage_done(const char* stage, double micros) {
    if (metrics_ != nullptr) {
      dp_stages_->inc();
      dp_stage_us_->observe(micros);
    }
    if (sink_ != nullptr) {
      Event e;
      e.kind = EventKind::kDpStageDone;
      e.stage = stage;
      e.micros = micros;
      sink_->on_event(e);
    }
  }

  void set_items_live(std::size_t n) {
    if (items_live_ != nullptr) items_live_->set(static_cast<double>(n));
  }

  /// Resident heap footprint of a serving layer (item slab + index + copy
  /// state; see OnlineDataService::resident_bytes). Engine shards add to
  /// the shared gauge so the exported value covers the whole fleet.
  void set_service_resident_bytes(std::size_t bytes) {
    if (service_resident_bytes_ != nullptr) {
      service_resident_bytes_->set(static_cast<double>(bytes));
    }
  }
  void add_service_resident_bytes(std::size_t bytes) {
    if (service_resident_bytes_ != nullptr) {
      service_resident_bytes_->add(static_cast<double>(bytes));
    }
  }

  // Cached histogram handles for ScopedTimer call sites (null without a
  // registry, which ScopedTimer treats as "off").
  Histogram* request_latency_us() const { return request_latency_us_; }
  Histogram* executor_replay_us() const { return executor_replay_us_; }

 private:
  MetricsRegistry* metrics_ = nullptr;
  TraceSink* sink_ = nullptr;

  Counter* requests_served_ = nullptr;
  Counter* cache_hits_ = nullptr;
  Counter* cache_misses_ = nullptr;
  Counter* transfers_issued_ = nullptr;
  Counter* copies_born_ = nullptr;
  Counter* copies_expired_ = nullptr;
  Counter* epoch_resets_ = nullptr;
  Counter* dp_stages_ = nullptr;
  Gauge* replicas_alive_ = nullptr;
  Gauge* items_live_ = nullptr;
  Gauge* service_resident_bytes_ = nullptr;
  Histogram* request_latency_us_ = nullptr;
  Histogram* dp_stage_us_ = nullptr;
  Histogram* executor_replay_us_ = nullptr;
  Histogram* cost_per_request_ = nullptr;
  Histogram* replicas_per_request_ = nullptr;
};

}  // namespace mcdc::obs
