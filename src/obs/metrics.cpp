#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "util/csv.h"

namespace mcdc::obs {

namespace {

/// Shortest round-trippable decimal for JSON/CSV numeric cells.
std::string num_to_string(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips.
  char shorter[32];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0.0;
  if (std::sscanf(shorter, "%lf", &back) == 1 && back == v) return shorter;
  return buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[idx];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot s;
  s.upper_bounds = bounds_;
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int count) {
  if (start <= 0 || factor <= 1.0 || count <= 0) {
    throw std::invalid_argument(
        "Histogram::exponential_bounds: need start > 0, factor > 1, count > 0");
  }
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i, v *= factor) b.push_back(v);
  return b;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += num_to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"upper_bounds\":[";
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      if (i) out += ',';
      out += num_to_string(h.upper_bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "],\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + num_to_string(h.sum);
    out += ",\"min\":" + num_to_string(h.min);
    out += ",\"max\":" + num_to_string(h.max);
    out += '}';
  }
  out += "},\"latency\":{";
  first = true;
  for (const auto& [name, h] : latency) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"counts\":[";
    for (int b = 0; b < kLatencyBuckets; ++b) {
      if (b) out += ',';
      out += std::to_string(h.counts[static_cast<std::size_t>(b)]);
    }
    out += "],\"count\":" + std::to_string(h.count);
    out += ",\"sum_ns\":" + std::to_string(h.sum_ns);
    out += ",\"max_ns\":" + std::to_string(h.max_ns);
    out += ",\"p50_ns\":" + num_to_string(h.p50_ns());
    out += ",\"p95_ns\":" + num_to_string(h.p95_ns());
    out += ",\"p99_ns\":" + num_to_string(h.p99_ns());
    out += '}';
  }
  out += "}}";
  return out;
}

void MetricsSnapshot::write_csv(std::ostream& out) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"kind", "name", "key", "value"});
  for (const auto& [name, v] : counters) {
    rows.push_back({"counter", name, "value", std::to_string(v)});
  }
  for (const auto& [name, v] : gauges) {
    rows.push_back({"gauge", name, "value", num_to_string(v)});
  }
  for (const auto& [name, h] : histograms) {
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      rows.push_back({"histogram", name, "le_" + num_to_string(h.upper_bounds[i]),
                      std::to_string(h.counts[i])});
    }
    rows.push_back({"histogram", name, "overflow",
                    std::to_string(h.counts.back())});
    rows.push_back({"histogram", name, "count", std::to_string(h.count)});
    rows.push_back({"histogram", name, "sum", num_to_string(h.sum)});
    rows.push_back({"histogram", name, "min", num_to_string(h.min)});
    rows.push_back({"histogram", name, "max", num_to_string(h.max)});
  }
  for (const auto& [name, h] : latency) {
    // 48 log2 buckets are mostly empty in practice; only emit occupied
    // ones (the ceilings make the row self-describing).
    for (int b = 0; b < kLatencyBuckets; ++b) {
      const std::uint64_t c = h.counts[static_cast<std::size_t>(b)];
      if (c == 0) continue;
      rows.push_back(
          {"latency", name,
           "le_" +
               std::to_string(LatencyHistogramSnapshot::bucket_ceil_ns(b)),
           std::to_string(c)});
    }
    rows.push_back({"latency", name, "count", std::to_string(h.count)});
    rows.push_back({"latency", name, "sum_ns", std::to_string(h.sum_ns)});
    rows.push_back({"latency", name, "max_ns", std::to_string(h.max_ns)});
  }
  csv_write(out, rows);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

LatencyHistogram& MetricsRegistry::latency(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latency_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  s.latency.reserve(latency_.size());
  for (const auto& [name, h] : latency_) {
    s.latency.emplace_back(name, h->snapshot());
  }
  return s;
}

LabeledMetricFamily::LabeledMetricFamily(MetricsRegistry& reg,
                                         const char* base, std::size_t label)
    : reg_(&reg), prefix_(base + std::to_string(label) + "_") {}

Counter& LabeledMetricFamily::counter(const char* field) const {
  return reg_->counter(prefix_ + field);
}

Gauge& LabeledMetricFamily::gauge(const char* field) const {
  return reg_->gauge(prefix_ + field);
}

Histogram& LabeledMetricFamily::histogram(
    const char* field, std::vector<double> upper_bounds) const {
  return reg_->histogram(prefix_ + field, std::move(upper_bounds));
}

LatencyHistogram& LabeledMetricFamily::latency(const char* field) const {
  return reg_->latency(prefix_ + field);
}

}  // namespace mcdc::obs
