#include "obs/sinks.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace mcdc::obs {

namespace {

void append_num(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  double back = 0.0;
  if (std::sscanf(buf, "%lf", &back) != 1 || back != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {}

JsonlSink::~JsonlSink() = default;

bool JsonlSink::ok() const { return out_ != nullptr && out_->good(); }

void JsonlSink::on_event(const Event& e) {
  *out_ << to_json(e) << '\n';
  ++written_;
}

std::string JsonlSink::to_json(const Event& e) {
  std::string out = "{\"ev\":\"";
  out += event_kind_name(e.kind);
  out += '"';
  auto field_int = [&out](const char* name, long long v) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(v);
  };
  auto field_num = [&out](const char* name, double v) {
    out += ",\"";
    out += name;
    out += "\":";
    append_num(out, v);
  };
  auto field_bool = [&out](const char* name, bool v) {
    out += ",\"";
    out += name;
    out += "\":";
    out += v ? "true" : "false";
  };
  if (e.item >= 0) field_int("item", e.item);
  switch (e.kind) {
    case EventKind::kRequestServed:
      field_int("req", e.request);
      field_int("server", e.server);
      field_num("t", e.at);
      field_bool("hit", e.hit);
      field_num("cost_delta", e.cost_delta);
      break;
    case EventKind::kTransferIssued:
      field_int("req", e.request);
      field_int("from", e.from);
      field_int("to", e.server);
      field_num("t", e.at);
      field_num("cost_delta", e.cost_delta);
      break;
    case EventKind::kCopyBorn:
      field_int("server", e.server);
      field_num("t", e.at);
      break;
    case EventKind::kCopyExpired:
      field_int("server", e.server);
      field_num("t", e.at);
      field_bool("expired", e.expired);
      field_num("cost_delta", e.cost_delta);
      break;
    case EventKind::kEpochReset:
      field_num("t", e.at);
      break;
    case EventKind::kDpStageDone:
      out += ",\"stage\":\"";
      out += e.stage ? e.stage : "";
      out += '"';
      field_num("micros", e.micros);
      break;
  }
  out += '}';
  return out;
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("RingBufferSink: capacity must be >= 1");
  }
  buf_.reserve(capacity_);
}

void RingBufferSink::on_event(const Event& e) {
  ++seen_;
  ++kind_counts_[static_cast<std::size_t>(e.kind)];
  if (buf_.size() < capacity_) {
    buf_.push_back(e);
  } else {
    buf_[next_] = e;
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<Event> RingBufferSink::events() const {
  std::vector<Event> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(next_ + i) % buf_.size()]);
  }
  return out;
}

void RingBufferSink::clear() {
  buf_.clear();
  next_ = 0;
  seen_ = 0;
  kind_counts_.fill(0);
}

}  // namespace mcdc::obs
