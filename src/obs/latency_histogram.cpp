#include "obs/latency_histogram.h"

#include <algorithm>

namespace mcdc::obs {

LatencyHistogramSnapshot LatencyHistogram::snapshot() const {
  LatencyHistogramSnapshot s;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    s.counts[static_cast<std::size_t>(b)] =
        counts_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    s.count += s.counts[static_cast<std::size_t>(b)];
  }
  s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  s.max_ns = max_ns_.load(std::memory_order_relaxed);
  return s;
}

void LatencyHistogramSnapshot::merge(const LatencyHistogramSnapshot& other) {
  for (int b = 0; b < kLatencyBuckets; ++b) {
    counts[static_cast<std::size_t>(b)] +=
        other.counts[static_cast<std::size_t>(b)];
  }
  count += other.count;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
}

std::uint64_t LatencyHistogramSnapshot::bucket_floor_ns(int b) {
  return b == 0 ? 0 : (std::uint64_t{1} << b);
}

std::uint64_t LatencyHistogramSnapshot::bucket_ceil_ns(int b) {
  return std::uint64_t{1} << (b + 1);
}

namespace {

/// Estimated k-th order statistic (0-based): samples spread uniformly
/// inside their bucket, each at the center of its 1/n_b slice. The
/// overflow bucket's upper edge is clamped to the observed max.
double order_stat_ns(const LatencyHistogramSnapshot& s, double k) {
  std::uint64_t before = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    const std::uint64_t n = s.counts[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (k < static_cast<double>(before + n)) {
      const double lo =
          static_cast<double>(LatencyHistogramSnapshot::bucket_floor_ns(b));
      double hi =
          static_cast<double>(LatencyHistogramSnapshot::bucket_ceil_ns(b));
      if (b == kLatencyBuckets - 1 || static_cast<double>(s.max_ns) < hi) {
        hi = std::max(lo + 1.0, static_cast<double>(s.max_ns));
      }
      const double j = k - static_cast<double>(before);  // 0-based in-bucket
      return lo + (hi - lo) * ((j + 0.5) / static_cast<double>(n));
    }
    before += n;
  }
  return static_cast<double>(s.max_ns);
}

}  // namespace

double LatencyHistogramSnapshot::percentile_ns(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  if (q == 100.0) return static_cast<double>(max_ns);
  // util/stats.h percentile(): fractional rank over n-1 gaps, linear
  // interpolation between the two flanking order statistics.
  const double pos = q / 100.0 * static_cast<double>(count - 1);
  const double lo = static_cast<double>(static_cast<std::uint64_t>(pos));
  const double frac = pos - lo;
  const double a = order_stat_ns(*this, lo);
  const double b = frac > 0.0 ? order_stat_ns(*this, lo + 1.0) : a;
  const double v = a * (1.0 - frac) + b * frac;
  return std::min(v, static_cast<double>(max_ns));
}

}  // namespace mcdc::obs
