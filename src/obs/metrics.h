// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Design goals, in order: (1) the hot path — incrementing a counter or
// observing a histogram sample — must be cheap enough to sit on the
// per-request path of the online service; (2) a registry snapshot must be
// consistent enough for reports (exact under single-threaded use, per-metric
// atomic otherwise); (3) export to JSON and to the repo's CSV writer so
// bench harnesses and the trace tool can persist runs.
//
// Concurrency: counters and gauges are lock-free atomics; histograms take a
// per-instance mutex held for a handful of arithmetic ops. Registration
// (name -> metric) takes the registry mutex; returned references stay valid
// for the registry's lifetime, so callers register once and cache pointers
// (see obs::Observer).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency_histogram.h"

namespace mcdc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (replicas alive, live items, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;   ///< ascending; final overflow implicit
  std::vector<std::uint64_t> counts;  ///< size upper_bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// upper_bounds[i-1] < v <= upper_bounds[i] (Prometheus "le" convention);
/// the trailing bucket counts overflows v > upper_bounds.back().
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);
  HistogramSnapshot snapshot() const;

  /// {start, start*factor, start*factor^2, ...}, `count` bounds.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Everything a registry held at one instant, name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, LatencyHistogramSnapshot>> latency;

  /// One JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...},"latency":{...}}.
  /// Latency histograms carry integer-ns buckets plus derived
  /// p50/p95/p99 so consumers need not re-implement the interpolation.
  std::string to_json() const;

  /// Long-form CSV via util/csv.h: rows of `kind,name,key,value` (counters
  /// and gauges use key "value"; histograms emit per-bucket `le_<bound>`
  /// rows plus count/sum/min/max; latency histograms emit only their
  /// non-empty `le_<ns>` buckets plus count/sum_ns/max_ns).
  void write_csv(std::ostream& out) const;
};

/// Named metric store. Metrics are created on first registration and live
/// as long as the registry; re-registering a name returns the same object
/// (histogram bounds are fixed by the first registration).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  LatencyHistogram& latency(const std::string& name);

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }
  void write_csv(std::ostream& out) const { snapshot().write_csv(out); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latency_;
};

/// Cached name builder for a labeled metric family — the per-shard /
/// per-producer registrations ("engine_shard<i>_*", "engine_producer<i>_*").
/// The "<base><label>_" prefix is formatted exactly once; each handle is
/// then resolved with a single concatenation instead of every registration
/// site re-spelling the prefix arithmetic. Handles come straight from the
/// registry, so they stay valid for the registry's lifetime and are meant
/// to be cached by the caller as usual.
class LabeledMetricFamily {
 public:
  LabeledMetricFamily(MetricsRegistry& reg, const char* base,
                      std::size_t label);

  Counter& counter(const char* field) const;
  Gauge& gauge(const char* field) const;
  Histogram& histogram(const char* field,
                       std::vector<double> upper_bounds) const;
  LatencyHistogram& latency(const char* field) const;

  /// "<base><label>_", e.g. "engine_shard3_".
  const std::string& prefix() const { return prefix_; }

 private:
  MetricsRegistry* reg_;
  std::string prefix_;
};

}  // namespace mcdc::obs
