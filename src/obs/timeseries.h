// Fixed-capacity telemetry rings and the background gauge sampler.
//
// Everything here obeys the telemetry allocation contract: rings size
// themselves fully at construction and never reallocate, so pushing a
// sample or a span from a hot path (shard worker, sampler tick) is
// allocation-free — the property the counting-operator-new test in
// tests/test_telemetry.cpp pins down. Overflow keeps the newest entries
// (a telemetry tail is worth more than a head) and counts what it
// displaced via seen().
//
// Timestamps all come from one process-wide monotonic clock
// (telemetry_now_ns), so submit stamps, shard spans, and sampler series
// land on a single timeline in the Chrome-trace export.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/annotate.h"

namespace mcdc::obs {

/// Nanoseconds since the process-wide telemetry epoch (the first call).
/// Monotonic (steady_clock); shared by every telemetry producer so
/// exported timelines align.
std::uint64_t telemetry_now_ns() noexcept;

/// One sampled value on the telemetry timeline.
struct TimeSample {
  std::uint64_t t_ns = 0;
  double value = 0.0;
};

// Ring entries are bulk-copied on export and sized at ring construction;
// the capacity math in the samplers assumes these exact footprints.
static_assert(std::is_trivially_copyable_v<TimeSample> &&
                  sizeof(TimeSample) == 16,
              "TimeSample must stay a 16-byte POD (SampleRing slot)");

/// Single-writer ring of TimeSamples. Pre-allocated; keeps the newest
/// `capacity` entries. Readers must synchronize with the writer
/// externally (the sampler reads after stop(), the engine after join).
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity);

  MCDC_NO_ALLOC MCDC_LOCK_FREE
  void push(std::uint64_t t_ns, double value) noexcept {
    buf_[static_cast<std::size_t>(seen_ % buf_.size())] = {t_ns, value};
    ++seen_;
  }

  /// Retained samples, oldest first. Allocates (export path only).
  std::vector<TimeSample> samples() const;

  std::uint64_t seen() const { return seen_; }
  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<TimeSample> buf_;
  std::uint64_t seen_ = 0;
};

/// One timed stage execution (Chrome-trace "X" span). `name` must point
/// to static storage — rings retain it verbatim.
struct TelemetrySpan {
  const char* name = "";
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t weight = 0;  ///< records covered by the span (0 = n/a)
};

static_assert(std::is_trivially_copyable_v<TelemetrySpan> &&
                  sizeof(TelemetrySpan) == 32,
              "TelemetrySpan must stay a 32-byte POD (SpanRing slot)");

/// Single-writer ring of TelemetrySpans; same contract as SampleRing.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity);

  MCDC_NO_ALLOC MCDC_LOCK_FREE
  void push(const TelemetrySpan& s) noexcept {
    buf_[static_cast<std::size_t>(seen_ % buf_.size())] = s;
    ++seen_;
  }

  /// Retained spans, oldest first. Allocates (export path only).
  std::vector<TelemetrySpan> spans() const;

  std::uint64_t seen() const { return seen_; }
  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<TelemetrySpan> buf_;
  std::uint64_t seen_ = 0;
};

/// Optional background thread that probes a fixed set of sources every
/// `period` and appends to one pre-allocated SampleRing per source.
/// Sources are registered at construction (probes must be safe to call
/// from the sampler thread for the sampler's whole lifetime and must not
/// allocate); start() launches the thread, stop() joins it. series() is
/// valid after stop().
class TelemetrySampler {
 public:
  struct Source {
    std::string name;
    std::function<double()> probe;
  };

  struct Series {
    std::string name;
    std::uint64_t seen = 0;  ///< samples taken (>= samples.size())
    std::vector<TimeSample> samples;
  };

  TelemetrySampler(std::vector<Source> sources,
                   std::chrono::milliseconds period,
                   std::size_t capacity = 4096);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void start();
  /// Idempotent; joins the thread. Safe to call without start().
  void stop();
  bool running() const { return thread_.joinable(); }

  std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_acquire);
  }

  /// One series per source, in registration order. Call after stop().
  std::vector<Series> series() const;

 private:
  void run();

  std::vector<Source> sources_;
  std::vector<SampleRing> rings_;  ///< parallel to sources_
  std::chrono::milliseconds period_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace mcdc::obs
