#include "obs/timeseries.h"

#include <stdexcept>
#include <utility>

namespace mcdc::obs {

std::uint64_t telemetry_now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  // Magic static: the first caller fixes the process-wide epoch.
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

SampleRing::SampleRing(std::size_t capacity) : buf_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SampleRing: capacity must be > 0");
  }
}

std::vector<TimeSample> SampleRing::samples() const {
  const std::size_t n =
      seen_ < buf_.size() ? static_cast<std::size_t>(seen_) : buf_.size();
  std::vector<TimeSample> out;
  out.reserve(n);
  const std::uint64_t first = seen_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(buf_[static_cast<std::size_t>((first + i) % buf_.size())]);
  }
  return out;
}

SpanRing::SpanRing(std::size_t capacity) : buf_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SpanRing: capacity must be > 0");
  }
}

std::vector<TelemetrySpan> SpanRing::spans() const {
  const std::size_t n =
      seen_ < buf_.size() ? static_cast<std::size_t>(seen_) : buf_.size();
  std::vector<TelemetrySpan> out;
  out.reserve(n);
  const std::uint64_t first = seen_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(buf_[static_cast<std::size_t>((first + i) % buf_.size())]);
  }
  return out;
}

TelemetrySampler::TelemetrySampler(std::vector<Source> sources,
                                   std::chrono::milliseconds period,
                                   std::size_t capacity)
    : sources_(std::move(sources)), period_(period) {
  if (period_.count() <= 0) {
    throw std::invalid_argument("TelemetrySampler: period must be positive");
  }
  rings_.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    rings_.emplace_back(capacity);
  }
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  if (thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void TelemetrySampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetrySampler::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Tick first so even a short-lived run records one sample per source.
    lock.unlock();
    const std::uint64_t now = telemetry_now_ns();
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      rings_[i].push(now, sources_[i].probe());
    }
    ticks_.fetch_add(1, std::memory_order_release);
    lock.lock();
    if (cv_.wait_for(lock, period_, [this] { return stopping_; })) return;
  }
}

std::vector<TelemetrySampler::Series> TelemetrySampler::series() const {
  std::vector<Series> out;
  out.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    Series s;
    s.name = sources_[i].name;
    s.seen = rings_[i].seen();
    s.samples = rings_[i].samples();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mcdc::obs
