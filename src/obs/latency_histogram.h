// Lock-free fixed-bucket latency histogram (log2 nanosecond buckets).
//
// The mutex-guarded obs::Histogram is fine for per-request observation on
// a single thread, but the streaming engine wants to record four stage
// latencies per record from N worker threads at 10M+ records/s. This
// variant trades bucket-boundary flexibility for a wait-free record():
// the bucket array is a fixed std::array of atomics (pre-allocated, so
// recording can sit inside the zero-steady-state-allocation envelope),
// bucket selection is one std::bit_width, and every update is a relaxed
// fetch_add (max is a CAS loop). Buckets are powers of two in integer
// nanoseconds — bucket i counts samples in [2^i, 2^(i+1)) — which covers
// 1 ns .. ~39 hours in 48 buckets with <= 2x relative quantile error.
//
// Snapshots are plain PODs: mergeable across shards (bucket-wise add) and
// queryable for p50/p95/p99 with the same fractional-rank interpolation
// as util/stats.h percentile() — the agreement the telemetry tests pin
// down on random samples.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "util/annotate.h"

namespace mcdc::obs {

inline constexpr int kLatencyBuckets = 48;

/// Point-in-time copy of one LatencyHistogram; plain data, mergeable.
struct LatencyHistogramSnapshot {
  std::array<std::uint64_t, kLatencyBuckets> counts{};
  std::uint64_t count = 0;   ///< sum of counts (kept consistent by snapshot())
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;

  /// Bucket-wise accumulate (cross-shard rollup).
  void merge(const LatencyHistogramSnapshot& other);

  /// Inclusive lower edge of bucket b in ns (0 for bucket 0).
  static std::uint64_t bucket_floor_ns(int b);
  /// Exclusive upper edge of bucket b in ns.
  static std::uint64_t bucket_ceil_ns(int b);

  /// Quantile estimate in ns: util/stats.h fractional-rank interpolation
  /// over the order statistics, with samples spread uniformly inside
  /// their bucket. Exact to within one bucket (<= 2x). q in [0, 100];
  /// returns 0 when empty; q == 100 returns the exact max.
  double percentile_ns(double q) const;

  double p50_ns() const { return percentile_ns(50); }
  double p95_ns() const { return percentile_ns(95); }
  double p99_ns() const { return percentile_ns(99); }
  double mean_ns() const {
    return count ? static_cast<double>(sum_ns) / static_cast<double>(count)
                 : 0.0;
  }
};

/// Wait-free multi-writer histogram of nanosecond durations.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Any thread; no locks, no allocation.
  MCDC_NO_ALLOC MCDC_LOCK_FREE
  void record(std::uint64_t ns) noexcept {
    counts_[static_cast<std::size_t>(bucket_of(ns))].fetch_add(
        1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur && !max_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }

  /// Bucket index: floor(log2(ns)), clamped to the array (0 and 1 ns land
  /// in bucket 0; everything >= 2^47 ns in the last bucket).
  static int bucket_of(std::uint64_t ns) noexcept {
    if (ns < 2) return 0;
    const int b = static_cast<int>(std::bit_width(ns)) - 1;
    return b < kLatencyBuckets ? b : kLatencyBuckets - 1;
  }

  /// Consistent-enough copy: per-bucket atomic reads; count is derived
  /// from the bucket sums so quantiles are internally consistent even if
  /// writers race the snapshot.
  LatencyHistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace mcdc::obs
