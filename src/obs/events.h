// Typed runtime events emitted by the algorithm, service, and simulator
// layers (the `mcdc::obs` tracing pillar).
//
// Every instrumentation point produces one flat POD `Event`; a pluggable
// `TraceSink` receives them. The Event carries a superset of the fields any
// single kind needs so sinks can be allocation-free ring buffers. Cost
// accounting convention: each unit of cost is *booked* by exactly one event
// — a `kTransferIssued` books its lambda, a `kCopyExpired` books the
// mu * (death - birth) of the closed lifetime — so summing `cost_delta`
// over those two kinds reconciles exactly with the algorithm's reported
// total cost. `kRequestServed` additionally mirrors the cost attributable
// to serving that request (lambda on a miss, 0 on a hit) for per-request
// attribution; it is excluded from the booking identity.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace mcdc::obs {

enum class EventKind : std::uint8_t {
  kRequestServed = 0,  ///< a request was served (hit or via transfer)
  kTransferIssued,     ///< a copy was shipped between servers (books lambda)
  kCopyBorn,           ///< a replica came alive on a server
  kCopyExpired,        ///< a replica died (books mu * lifetime)
  kEpochReset,         ///< SC epoch completed; replica set collapsed to one
  kDpStageDone,        ///< one stage of the off-line DP finished
};

inline constexpr int kNumEventKinds = 6;

inline const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kRequestServed: return "request_served";
    case EventKind::kTransferIssued: return "transfer_issued";
    case EventKind::kCopyBorn: return "copy_born";
    case EventKind::kCopyExpired: return "copy_expired";
    case EventKind::kEpochReset: return "epoch_reset";
    case EventKind::kDpStageDone: return "dp_stage_done";
  }
  return "unknown";
}

/// One traced occurrence. Fields not meaningful for a kind keep their
/// defaults; `stage` must point to static storage (it is retained verbatim
/// by buffering sinks).
struct Event {
  EventKind kind = EventKind::kRequestServed;
  int item = -1;                ///< multi-item stream id; -1 single-instance
  RequestIndex request = kNoRequest;  ///< serving request index, if any
  ServerId server = kNoServer;  ///< served / born / expired server, transfer target
  ServerId from = kNoServer;    ///< transfer source
  Time at = 0.0;                ///< event time (absolute when offset is set)
  bool hit = false;             ///< kRequestServed: served by a local copy
  bool expired = false;         ///< kCopyExpired: window ran out (vs epoch/horizon close)
  Cost cost_delta = 0.0;        ///< cost booked/attributed by this event
  const char* stage = nullptr;  ///< kDpStageDone: stage name (static storage)
  double micros = 0.0;          ///< kDpStageDone: stage wall time in µs
};

/// Receiver interface for traced events. Implementations must tolerate
/// high call rates; heavy sinks should buffer internally.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// Sink that drops everything. Useful to measure the cost of the tracing
/// plumbing itself (the dispatch, not the serialization).
class NullSink final : public TraceSink {
 public:
  void on_event(const Event&) override {}
};

}  // namespace mcdc::obs
