// Network-time discrete-event simulator for the scenario lab.
//
// The policy_runner world is instantaneous: a transfer lands the moment it
// is ordered, so a copy is either local or one lambda away. This simulator
// adds the network back in — ROADMAP item 3's "network delays, server
// capacities" — while running the same speculative-caching discipline:
//
//   * A transfer of an item occupies its SOURCE server's link for
//     item_size / bandwidth simulated time. Sources have `transfer_slots`
//     concurrent outgoing transfers; excess fetches queue FIFO (by event
//     sequence, so the order is deterministic).
//   * A request is a HIT (latency 0) when a local copy exists, JOINS an
//     in-flight transfer to its server when one exists (no duplicate
//     fetch), and otherwise starts a fetch from the most-recently-used
//     holder. Latency = copy-arrival time - request time, checked against
//     the scenario's SLO.
//   * Replicas expire one speculation window after their last use, exactly
//     as in SC: window = factor * lambda / mu, refreshed on every local
//     hit and on serving a transfer. The LAST copy of an item is pinned
//     (never dropped — the feasibility invariant), and a copy that is
//     currently sourcing transfers is kept alive until they complete
//     ("doomed", dropped at the next completion).
//   * An optional sim::WindowController is polled every `interval` of
//     simulated time with the observed hit/transfer/expiry/SLO mix and
//     retunes (factor, epoch) online — the adaptive policy of the lab.
//
// Everything runs off one EventQueue ordered by (time, priority, seq); no
// wall clocks and no RNG inside the simulator, so a given (config, stream)
// replays bit-identically (the scenlab fuzz lane pins this).
//
// Accounting mirrors the paper's cost model: caching cost mu_s * (copy
// lifetime at s), transfer cost lambda(u,v) per completed transfer, and
// total == caching + transfer is enforced exactly (cost reconciliation
// invariant). Copy lifetimes truncate at the horizon = max(duration, last
// event time).
//
// Heterogeneous costs (ScenarioConfig::cost = "het:<spec>", or a
// ServingCostModel carrying a HeterogeneousCostModel): fetches pick the
// cheapest-lambda holder (ties prefer the last requesting server, then
// the most-recently-used copy — the homogeneous discipline), a transfer
// u->v occupies its source for (size/bw) * lambda(u,v)/min_lambda (link
// time scales with distance), costs lambda(u,v), and each copy's
// speculation window is factor * lambda_in / mu_s where lambda_in is the
// edge it arrived over (cheapest_in for a born copy). Under an
// exactly-homogeneous matrix every one of these expressions reduces
// bit-for-bit to the homogeneous path (x/x == 1.0, same evaluation
// order), so het-lifted runs replay bit-identically — the scenlab fuzz
// lane pins this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "sim/policies.h"
#include "workload/scenario_gen.h"

#include "scenlab/scenario_config.h"

namespace mcdc::scenlab {

struct NetworkRunResult {
  std::string policy_name;

  Cost total_cost = 0.0;
  Cost caching_cost = 0.0;
  Cost transfer_cost = 0.0;

  std::size_t requests = 0;
  std::size_t hits = 0;    ///< served by a local copy at latency 0
  std::size_t misses = 0;  ///< waited for a transfer (includes joins)
  std::size_t joins = 0;   ///< misses that latched onto an in-flight transfer
  std::size_t transfers = 0;
  std::size_t expirations = 0;  ///< copies dropped by window expiry / epoch

  std::size_t slo_met = 0;
  std::size_t slo_missed = 0;
  double latency_p50 = 0.0;  ///< simulated time units (not ns)
  double latency_p99 = 0.0;
  double latency_mean = 0.0;
  double latency_max = 0.0;

  std::size_t max_copies = 0;  ///< peak replicas of any single item
  double copy_time = 0.0;      ///< integral of replica count over time
  Time horizon = 0.0;

  std::size_t events = 0;     ///< events processed
  std::size_t max_queue = 0;  ///< event-queue high-water mark
  std::size_t queued_transfers = 0;  ///< fetches that waited for a slot

  std::size_t monitor_intervals = 0;
  double final_factor = 1.0;
  std::size_t final_epoch = 0;

  bool feasible = true;
  std::vector<std::string> violations;
};

/// Run the network-time simulation of `stream` under `cfg`'s network and
/// policy knobs. `controller` == nullptr runs static SC at cfg.window;
/// otherwise the controller retunes (factor, epoch) every cfg.interval.
/// Items are born at their first request's server (the split_by_item
/// convention); items never requested cost nothing.
///
/// `cm` accepts a CostModel (implicit conversion; the homogeneous path)
/// or a heterogeneous ServingCostModel. cfg.cost = "het:<spec>" selects
/// heterogeneity by string instead; combining it with a heterogeneous
/// `cm` is a conflict (std::invalid_argument), and either way the model
/// must be sized for cfg.load.num_servers.
NetworkRunResult run_network_sim(const ScenarioConfig& cfg,
                                 const ServingCostModel& cm,
                                 const std::vector<MultiItemRequest>& stream,
                                 WindowController* controller = nullptr);

}  // namespace mcdc::scenlab
