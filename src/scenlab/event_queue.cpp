#include "scenlab/event_queue.h"

#include <utility>

#include "util/annotate.h"
#include "util/contracts.h"

namespace mcdc::scenlab {

MCDC_DETERMINISTIC
bool EventQueue::before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) {
    return static_cast<std::uint8_t>(a.kind) < static_cast<std::uint8_t>(b.kind);
  }
  return a.seq < b.seq;
}

MCDC_DETERMINISTIC MCDC_HOT_PATH
std::uint64_t EventQueue::push(Event e) {
  e.seq = next_seq_++;
  heap_.push_back(e);  // mcdc-lint: allow(alloc) amortized past the high-water mark
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
  if (heap_.size() > max_size_) max_size_ = heap_.size();
  return e.seq;
}

MCDC_DETERMINISTIC MCDC_HOT_PATH
Event EventQueue::pop() {
  MCDC_ASSERT(!heap_.empty(), "EventQueue::pop on an empty queue");
  const Event out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t least = i;
    if (l < n && before(heap_[l], heap_[least])) least = l;
    if (r < n && before(heap_[r], heap_[least])) least = r;
    if (least == i) break;
    std::swap(heap_[i], heap_[least]);
    i = least;
  }
  return out;
}

}  // namespace mcdc::scenlab
