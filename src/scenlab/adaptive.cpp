#include "scenlab/adaptive.h"

#include <algorithm>
#include <stdexcept>

#include "util/annotate.h"
#include "util/contracts.h"

namespace mcdc::scenlab {

AdaptiveController::AdaptiveController(const AdaptiveOptions& options)
    : opt_(options) {
  if (!(opt_.delta_base > 0.0)) {
    throw std::invalid_argument("AdaptiveController: delta_base must be > 0");
  }
  if (!(opt_.ewma > 0.0 && opt_.ewma <= 1.0)) {
    throw std::invalid_argument("AdaptiveController: ewma must be in (0, 1]");
  }
  if (!(opt_.clamp_lo > 0.0 && opt_.clamp_hi >= opt_.clamp_lo)) {
    throw std::invalid_argument(
        "AdaptiveController: need 0 < clamp_lo <= clamp_hi");
  }
  if (!(opt_.blend > 0.0 && opt_.blend <= 1.0)) {
    throw std::invalid_argument("AdaptiveController: blend must be in (0, 1]");
  }
}

void AdaptiveController::reset() {
  rate_ewma_ = 0.0;
  warm_ = false;
}

MCDC_DETERMINISTIC MCDC_HOT_PATH
WindowDecision AdaptiveController::on_interval(
    const WindowIntervalStats& stats, const WindowDecision& current) {
  WindowDecision next = current;

  if (stats.requests == 0) {
    // Idle interval: nothing refreshes, every held copy is pure cost —
    // shrink toward the floor and keep the epoch as is.
    next.factor = std::max(opt_.clamp_lo, current.factor * 0.5);
    return next;
  }

  MCDC_ASSERT(stats.interval > 0.0, "monitoring interval must be positive");
  // Re-access intensity, not raw arrival rate: a pair seen once costs a
  // transfer regardless of the window, so only repeats within the interval
  // measure what a held copy would save.
  const double pairs =
      static_cast<double>(std::max<std::size_t>(1, stats.active_pairs));
  const double repeats = static_cast<double>(
      stats.requests - std::min(stats.requests, stats.active_pairs));
  const double rate = repeats / (pairs * stats.interval);
  rate_ewma_ = warm_ ? opt_.ewma * rate + (1.0 - opt_.ewma) * rate_ewma_
                     : rate;
  warm_ = true;

  // Expected re-hits per base window per active pair: the ski-rental dial.
  const double score = rate_ewma_ * opt_.delta_base;
  double target = std::clamp(score, opt_.clamp_lo, opt_.clamp_hi);

  const bool wasting = stats.expirations > stats.hits;
  if (wasting) {
    target = std::min(target, current.factor * 0.5);
  }
  if (static_cast<double>(stats.slo_missed) * 100.0 >
      static_cast<double>(stats.requests) * opt_.slo_miss_percent) {
    target = std::max(target, current.factor * 2.0);
  }

  next.factor =
      std::clamp((1.0 - opt_.blend) * current.factor + opt_.blend * target,
                 opt_.clamp_lo, opt_.clamp_hi);
  next.epoch_transfers =
      stats.expirations > 2 * stats.hits ? opt_.prune_epoch : opt_.base_epoch;
  return next;
}

}  // namespace mcdc::scenlab
