#include "scenlab/scenario_run.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "baselines/solve.h"
#include "core/online_sc.h"
#include "sim/policies.h"
#include "sim/policy_runner.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/table.h"

#include "scenlab/adaptive.h"

namespace mcdc::scenlab {

namespace {

/// Shortest round-trip decimal form for JSON numbers.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  MCDC_ASSERT(res.ec == std::errc{}, "double to_chars cannot fail here");
  return std::string(buf, res.ptr);
}

ScenarioRow row_from_network(const NetworkRunResult& net) {
  ScenarioRow row;
  row.policy = net.policy_name;
  row.total = net.total_cost;
  row.caching = net.caching_cost;
  row.transfer = net.transfer_cost;
  row.transfers = net.transfers;
  row.hits = net.hits;
  row.misses = net.misses;
  row.slo_attainment =
      net.requests == 0
          ? 1.0
          : static_cast<double>(net.slo_met) / static_cast<double>(net.requests);
  row.latency_p50 = net.latency_p50;
  row.latency_p99 = net.latency_p99;
  row.final_factor = net.final_factor;
  return row;
}

}  // namespace

const ScenarioRow* ScenarioReport::find(const std::string& policy) const {
  for (const ScenarioRow& row : rows) {
    if (row.policy == policy) return &row;
  }
  return nullptr;
}

std::string ScenarioReport::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "scenario " << mcdc::to_string(config.load.shape) << " seed "
     << config.seed << ": " << requests << " requests, " << items_touched
     << " items, " << flashes.size() << " flashes";
  if (rows.empty()) return os.str();

  std::vector<const ScenarioRow*> by_cost;
  by_cost.reserve(rows.size());
  for (const ScenarioRow& row : rows) by_cost.push_back(&row);
  std::sort(by_cost.begin(), by_cost.end(),
            [](const ScenarioRow* a, const ScenarioRow* b) {
              if (a->total != b->total) return a->total < b->total;
              return a->policy < b->policy;
            });
  const std::size_t shown =
      max_rows == 0 ? by_cost.size() : std::min(max_rows, by_cost.size());

  Table t({"policy", "total", "caching", "transfer", "transfers", "hits",
           "misses", "slo", "p99", "ratio"});
  for (std::size_t i = 0; i < shown; ++i) {
    const ScenarioRow& row = *by_cost[i];
    t.add_row({row.policy, Table::num(row.total), Table::num(row.caching),
               Table::num(row.transfer),
               Table::integer(static_cast<long long>(row.transfers)),
               Table::integer(static_cast<long long>(row.hits)),
               Table::integer(static_cast<long long>(row.misses)),
               Table::num(row.slo_attainment), Table::num(row.latency_p99),
               Table::num(row.ratio)});
  }
  os << "\n" << t.render();
  if (shown < by_cost.size()) {
    os << "(+" << by_cost.size() - shown << " more rows by cost)\n";
  }
  return os.str();
}

std::string ScenarioReport::to_json() const {
  std::ostringstream os;
  os << "{\"config\":\"" << config.to_string() << "\",";
  os << "\"requests\":" << requests << ",";
  os << "\"items_touched\":" << items_touched << ",";
  os << "\"flashes\":[";
  for (std::size_t i = 0; i < flashes.size(); ++i) {
    const FlashWindow& f = flashes[i];
    if (i > 0) os << ",";
    os << "{\"start\":" << json_num(f.start) << ",\"end\":" << json_num(f.end)
       << ",\"hot_item\":" << f.hot_item
       << ",\"hot_server\":" << f.hot_server << "}";
  }
  os << "],\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& row = rows[i];
    if (i > 0) os << ",";
    os << "{\"policy\":\"" << row.policy << "\","
       << "\"total\":" << json_num(row.total) << ","
       << "\"caching\":" << json_num(row.caching) << ","
       << "\"transfer\":" << json_num(row.transfer) << ","
       << "\"transfers\":" << row.transfers << ","
       << "\"hits\":" << row.hits << ","
       << "\"misses\":" << row.misses << ","
       << "\"slo_attainment\":" << json_num(row.slo_attainment) << ","
       << "\"latency_p50\":" << json_num(row.latency_p50) << ","
       << "\"latency_p99\":" << json_num(row.latency_p99) << ","
       << "\"ratio\":" << json_num(row.ratio) << ","
       << "\"final_factor\":" << json_num(row.final_factor) << "}";
  }
  os << "]}";
  return os.str();
}

namespace {

/// The homogeneous four-row run, kept verbatim: exactly-homogeneous het
/// configs are dispatched here (their scalar projection reproduces every
/// row bit-for-bit).
ScenarioReport run_scenario_hom(const ScenarioConfig& cfg, const CostModel& cm,
                                ScenarioReport rep,
                                const std::vector<MultiItemRequest>& stream) {
  // Network-time rows.
  rep.rows.push_back(row_from_network(run_network_sim(cfg, cm, stream)));
  {
    AdaptiveOptions opts;
    opts.delta_base = cm.lambda / cm.mu;
    opts.base_epoch = static_cast<std::size_t>(cfg.epoch);
    AdaptiveController controller(opts);
    rep.rows.push_back(
        row_from_network(run_network_sim(cfg, cm, stream, &controller)));
  }

  // Instantaneous world: per-item SC and the offline optimum.
  const std::vector<RequestSequence> per_item = split_by_item(
      stream, cfg.load.num_servers, cfg.load.num_items);
  ScenarioRow sc;
  sc.policy = "sc-instant";
  sc.latency_p50 = 0.0;
  sc.latency_p99 = 0.0;
  sc.slo_attainment = 1.0;
  sc.final_factor = cfg.window;
  ScenarioRow opt;
  opt.policy = "opt";
  opt.slo_attainment = 1.0;
  opt.final_factor = 0.0;
  for (const RequestSequence& seq : per_item) {
    if (seq.n() == 0) continue;
    ScSimPolicy policy(cm, seq.origin(),
                       cfg.epoch == 0 ? static_cast<std::size_t>(-1)
                                      : static_cast<std::size_t>(cfg.epoch),
                       cfg.window);
    const PolicyRunResult res = run_policy(seq, cm, policy);
    sc.total += res.total_cost;
    sc.caching += res.caching_cost;
    sc.transfer += res.transfer_cost;
    sc.transfers += res.transfers;
    sc.hits += res.hits;
    sc.misses += res.misses;

    SolveOptions solve_opts;
    solve_opts.algorithm = OfflineAlgorithm::kDp;
    solve_opts.schedule = false;
    opt.total += solve_offline(seq, cm, solve_opts).optimal_cost;
  }

  const double opt_total = opt.total;
  for (ScenarioRow& row : rep.rows) {
    row.ratio = opt_total > 0.0 ? row.total / opt_total : 1.0;
  }
  sc.ratio = opt_total > 0.0 ? sc.total / opt_total : 1.0;
  opt.ratio = 1.0;
  rep.rows.push_back(sc);
  rep.rows.push_back(opt);
  return rep;
}

/// The heterogeneous four-row run: per-link network rows, core SC-het for
/// sc-instant, and the het solve_offline facade for opt.
ScenarioReport run_scenario_het(const ScenarioConfig& cfg,
                                const ServingCostModel& scm,
                                ScenarioReport rep,
                                const std::vector<MultiItemRequest>& stream) {
  const HeterogeneousCostModel& het = *scm.het();

  rep.rows.push_back(row_from_network(run_network_sim(cfg, scm, stream)));
  {
    AdaptiveOptions opts;
    // The controller's base window: the worst speculation window any edge
    // can induce (max over u != v of lambda(u,v)/mu(v)).
    double base = 0.0;
    for (ServerId u = 0; u < het.m(); ++u) {
      for (ServerId v = 0; v < het.m(); ++v) {
        if (u == v) continue;
        base = std::max(base, het.speculation_window(u, v));
      }
    }
    opts.delta_base = base;
    opts.base_epoch = static_cast<std::size_t>(cfg.epoch);
    AdaptiveController controller(opts);
    rep.rows.push_back(
        row_from_network(run_network_sim(cfg, scm, stream, &controller)));
  }

  const std::vector<RequestSequence> per_item = split_by_item(
      stream, cfg.load.num_servers, cfg.load.num_items);
  ScenarioRow sc;
  sc.policy = "sc-instant";
  sc.slo_attainment = 1.0;
  sc.final_factor = cfg.window;
  ScenarioRow opt;
  opt.policy = "opt";
  opt.slo_attainment = 1.0;
  opt.final_factor = 0.0;
  SpeculativeCachingOptions sc_opts;
  sc_opts.speculation_factor = cfg.window;
  if (cfg.epoch > 0) {
    sc_opts.epoch_transfers = static_cast<std::size_t>(cfg.epoch);
  }
  sc_opts.recording = RecordingMode::kCostsOnly;
  for (const RequestSequence& seq : per_item) {
    if (seq.n() == 0) continue;
    const OnlineScResult res = run_speculative_caching(seq, scm, sc_opts);
    sc.total += res.total_cost;
    sc.caching += res.caching_cost;
    sc.transfer += res.transfer_cost;
    sc.transfers += res.misses;
    sc.hits += res.hits;
    sc.misses += res.misses;

    SolveOptions solve_opts;
    solve_opts.schedule = false;
    opt.total += solve_offline(seq, het, solve_opts).optimal_cost;
  }

  const double opt_total = opt.total;
  for (ScenarioRow& row : rep.rows) {
    row.ratio = opt_total > 0.0 ? row.total / opt_total : 1.0;
  }
  sc.ratio = opt_total > 0.0 ? sc.total / opt_total : 1.0;
  opt.ratio = 1.0;
  rep.rows.push_back(sc);
  rep.rows.push_back(opt);
  return rep;
}

}  // namespace

ScenarioReport run_scenario(const ScenarioConfig& cfg,
                            const ServingCostModel& cm) {
  // Resolve cfg.cost against the explicit model (the run_network_sim /
  // StreamingEngine rule: the string may select heterogeneity; two het
  // sources conflict).
  ServingCostModel effective = cm;
  if (cfg.cost != "hom") {
    if (cfg.cost.rfind("het:", 0) != 0) {
      throw std::invalid_argument(
          "run_scenario: ScenarioConfig::cost must be \"hom\" or "
          "\"het:<spec>\", got \"" + cfg.cost + "\"");
    }
    if (cm.heterogeneous()) {
      throw std::invalid_argument(
          "run_scenario: both the cost-model argument and "
          "ScenarioConfig::cost are heterogeneous — pick one");
    }
    effective =
        ServingCostModel(HeterogeneousCostModel::parse(cfg.cost.substr(4)));
  }
  if (effective.het() != nullptr &&
      effective.het()->m() != cfg.load.num_servers) {
    throw std::invalid_argument(
        "run_scenario: heterogeneous model is sized for " +
        std::to_string(effective.het()->m()) + " servers, scenario for " +
        std::to_string(cfg.load.num_servers));
  }

  ScenarioReport rep;
  rep.config = cfg;

  Rng rng(cfg.seed);
  const std::vector<MultiItemRequest> stream =
      gen_scenario_stream(rng, cfg.load, &rep.flashes);
  rep.requests = stream.size();

  std::vector<std::uint8_t> touched(
      static_cast<std::size_t>(cfg.load.num_items), 0);
  for (const MultiItemRequest& r : stream) {
    touched[static_cast<std::size_t>(r.item)] = 1;
  }
  for (const std::uint8_t t : touched) rep.items_touched += t;

  // The row runners receive the resolved model explicitly, so neutralize
  // the string selector (run_network_sim would otherwise see two
  // heterogeneous sources and flag the conflict).
  ScenarioConfig run_cfg = cfg;
  run_cfg.cost = "hom";

  if (effective.het() == nullptr) {
    return run_scenario_hom(run_cfg, effective.hom(), std::move(rep), stream);
  }
  if (effective.het()->is_exactly_homogeneous()) {
    // Scalar projection: every row implementation reproduces its
    // homogeneous output bit-for-bit on this matrix.
    return run_scenario_hom(run_cfg, effective.het()->as_homogeneous(),
                            std::move(rep), stream);
  }
  return run_scenario_het(run_cfg, effective, std::move(rep), stream);
}

}  // namespace mcdc::scenlab
