#include "scenlab/scenario_config.h"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "model/cost_model.h"
#include "util/contracts.h"
#include "util/kvform.h"

namespace mcdc::scenlab {

const char* to_string(ScenarioPolicy policy) {
  switch (policy) {
    case ScenarioPolicy::kStatic:
      return "static";
    case ScenarioPolicy::kAdaptive:
      return "adaptive";
  }
  MCDC_UNREACHABLE("bad ScenarioPolicy %d", static_cast<int>(policy));
}

ScenarioPolicy parse_scenario_policy(const char* name) {
  const std::string s(name);
  if (s == "static") return ScenarioPolicy::kStatic;
  if (s == "adaptive") return ScenarioPolicy::kAdaptive;
  throw std::invalid_argument("unknown scenario policy: " + s +
                              " (expected static|adaptive)");
}

namespace {

constexpr const char* kCtx = "ScenarioConfig";
constexpr const char* kKeys =
    "family|servers|items|users|rate|duration|period|day_night|flash_every|"
    "flash_len|flash_boost|flash_affinity|zipf_items|zipf_servers|bw|size|"
    "slots|slo|policy|window|interval|epoch|seed|cost";

// Thin context-binding shims over util/kvform.h — the shared helpers carry
// the whole-token and error-shape contract; these just pin the surface name.

using kvform::append_double;

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  kvform::bad_value(kCtx, key, value, expected);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value,
                        const char* expected) {
  return kvform::parse_u64(kCtx, key, value, expected);
}

double parse_f64(const std::string& key, const std::string& value,
                 const char* expected) {
  return kvform::parse_f64(kCtx, key, value, expected);
}

}  // namespace

std::string ScenarioConfig::to_string() const {
  std::string out;
  out.reserve(256);
  out += "family=";
  out += mcdc::to_string(load.shape);
  out += ",servers=";
  out += std::to_string(load.num_servers);
  out += ",items=";
  out += std::to_string(load.num_items);
  out += ",users=";
  append_double(out, load.users);
  out += ",rate=";
  append_double(out, load.rate_per_user);
  out += ",duration=";
  append_double(out, load.duration);
  out += ",period=";
  append_double(out, load.period);
  out += ",day_night=";
  append_double(out, load.day_night_ratio);
  out += ",flash_every=";
  append_double(out, load.flash_every);
  out += ",flash_len=";
  append_double(out, load.flash_len);
  out += ",flash_boost=";
  append_double(out, load.flash_boost);
  out += ",flash_affinity=";
  append_double(out, load.flash_affinity);
  out += ",zipf_items=";
  append_double(out, load.item_alpha);
  out += ",zipf_servers=";
  append_double(out, load.server_alpha);
  out += ",bw=";
  append_double(out, bandwidth);
  out += ",size=";
  append_double(out, item_size);
  out += ",slots=";
  out += std::to_string(transfer_slots);
  out += ",slo=";
  append_double(out, slo);
  out += ",policy=";
  out += scenlab::to_string(policy);
  out += ",window=";
  append_double(out, window);
  out += ",interval=";
  append_double(out, interval);
  out += ",epoch=";
  out += std::to_string(epoch);
  out += ",seed=";
  out += std::to_string(seed);
  out += ",cost=";
  out += cost;
  return out;
}

ScenarioConfig ScenarioConfig::parse(const std::string& text) {
  ScenarioConfig cfg;
  kvform::for_each_kv(kCtx, text, ',', kKeys, [&](const std::string& key,
                                                  const std::string& value) {
    if (key == "family") {
      if (value != "uniform" && value != "diurnal" && value != "flash" &&
          value != "mixed") {
        bad_value(key, value, "uniform|diurnal|flash|mixed");
      }
      cfg.load.shape = parse_load_shape(value.c_str());
    } else if (key == "servers") {
      cfg.load.num_servers = static_cast<int>(
          parse_u64(key, value, "a server count >= 2"));
      if (cfg.load.num_servers < 2) bad_value(key, value, "a server count >= 2");
    } else if (key == "items") {
      cfg.load.num_items =
          static_cast<int>(parse_u64(key, value, "an item count >= 1"));
      if (cfg.load.num_items < 1) bad_value(key, value, "an item count >= 1");
    } else if (key == "users") {
      cfg.load.users = parse_f64(key, value, "a user population > 0");
      if (!(cfg.load.users > 0.0)) bad_value(key, value, "a user population > 0");
    } else if (key == "rate") {
      cfg.load.rate_per_user = parse_f64(key, value, "a per-user rate > 0");
      if (!(cfg.load.rate_per_user > 0.0)) {
        bad_value(key, value, "a per-user rate > 0");
      }
    } else if (key == "duration") {
      cfg.load.duration = parse_f64(key, value, "a horizon > 0");
      if (!(cfg.load.duration > 0.0)) bad_value(key, value, "a horizon > 0");
    } else if (key == "period") {
      cfg.load.period = parse_f64(key, value, "a diurnal period > 0");
      if (!(cfg.load.period > 0.0)) {
        bad_value(key, value, "a diurnal period > 0");
      }
    } else if (key == "day_night") {
      cfg.load.day_night_ratio =
          parse_f64(key, value, "a peak/trough ratio >= 1");
      if (!(cfg.load.day_night_ratio >= 1.0)) {
        bad_value(key, value, "a peak/trough ratio >= 1");
      }
    } else if (key == "flash_every") {
      cfg.load.flash_every = parse_f64(key, value, "a flash interval > 0");
      if (!(cfg.load.flash_every > 0.0)) {
        bad_value(key, value, "a flash interval > 0");
      }
    } else if (key == "flash_len") {
      cfg.load.flash_len = parse_f64(key, value, "a flash duration > 0");
      if (!(cfg.load.flash_len > 0.0)) {
        bad_value(key, value, "a flash duration > 0");
      }
    } else if (key == "flash_boost") {
      cfg.load.flash_boost = parse_f64(key, value, "a flash multiplier >= 1");
      if (!(cfg.load.flash_boost >= 1.0)) {
        bad_value(key, value, "a flash multiplier >= 1");
      }
    } else if (key == "flash_affinity") {
      cfg.load.flash_affinity =
          parse_f64(key, value, "a hot-pair share in [0,1]");
      if (!(cfg.load.flash_affinity >= 0.0 &&
            cfg.load.flash_affinity <= 1.0)) {
        bad_value(key, value, "a hot-pair share in [0,1]");
      }
    } else if (key == "zipf_items") {
      cfg.load.item_alpha = parse_f64(key, value, "an item Zipf skew >= 0");
      if (!(cfg.load.item_alpha >= 0.0)) {
        bad_value(key, value, "an item Zipf skew >= 0");
      }
    } else if (key == "zipf_servers") {
      cfg.load.server_alpha =
          parse_f64(key, value, "a server Zipf skew >= 0");
      if (!(cfg.load.server_alpha >= 0.0)) {
        bad_value(key, value, "a server Zipf skew >= 0");
      }
    } else if (key == "bw") {
      cfg.bandwidth = parse_f64(key, value, "a link bandwidth > 0");
      if (!(cfg.bandwidth > 0.0)) bad_value(key, value, "a link bandwidth > 0");
    } else if (key == "size") {
      cfg.item_size = parse_f64(key, value, "an item size > 0");
      if (!(cfg.item_size > 0.0)) bad_value(key, value, "an item size > 0");
    } else if (key == "slots") {
      cfg.transfer_slots =
          static_cast<int>(parse_u64(key, value, "a slot count >= 1"));
      if (cfg.transfer_slots < 1) bad_value(key, value, "a slot count >= 1");
    } else if (key == "slo") {
      cfg.slo = parse_f64(key, value, "a latency SLO >= 0");
      if (!(cfg.slo >= 0.0)) bad_value(key, value, "a latency SLO >= 0");
    } else if (key == "policy") {
      if (value != "static" && value != "adaptive") {
        bad_value(key, value, "static|adaptive");
      }
      cfg.policy = parse_scenario_policy(value.c_str());
    } else if (key == "window") {
      cfg.window = parse_f64(key, value, "a speculation factor > 0");
      if (!(cfg.window > 0.0)) {
        bad_value(key, value, "a speculation factor > 0");
      }
    } else if (key == "interval") {
      cfg.interval = parse_f64(key, value, "a monitoring interval > 0");
      if (!(cfg.interval > 0.0)) {
        bad_value(key, value, "a monitoring interval > 0");
      }
    } else if (key == "epoch") {
      cfg.epoch = parse_u64(key, value, "an epoch length >= 0; 0 = off");
    } else if (key == "seed") {
      cfg.seed = parse_u64(key, value, "a seed >= 0");
    } else if (key == "cost") {
      if (value == "hom") {
        cfg.cost = "hom";
      } else if (value.rfind("het:", 0) == 0) {
        // Validate eagerly and store the canonical spec so
        // parse(to_string()) round-trips exactly.
        try {
          cfg.cost = "het:" +
                     HeterogeneousCostModel::parse(value.substr(4)).to_string();
        } catch (const std::invalid_argument& e) {
          throw std::invalid_argument("ScenarioConfig: bad value \"" + value +
                                      "\" for key \"cost\": " + e.what());
        }
      } else {
        bad_value(key, value, "hom|het:<spec>");
      }
    } else {
      return false;  // for_each_kv raises the uniform unknown-key error
    }
    return true;
  });
  return cfg;
}

bool ScenarioConfig::operator==(const ScenarioConfig& other) const {
  return load.shape == other.load.shape &&
         load.num_servers == other.load.num_servers &&
         load.num_items == other.load.num_items &&
         load.users == other.load.users &&
         load.rate_per_user == other.load.rate_per_user &&
         load.duration == other.load.duration &&
         load.period == other.load.period &&
         load.day_night_ratio == other.load.day_night_ratio &&
         load.flash_every == other.load.flash_every &&
         load.flash_len == other.load.flash_len &&
         load.flash_boost == other.load.flash_boost &&
         load.flash_affinity == other.load.flash_affinity &&
         load.item_alpha == other.load.item_alpha &&
         load.server_alpha == other.load.server_alpha &&
         bandwidth == other.bandwidth && item_size == other.item_size &&
         transfer_slots == other.transfer_slots && slo == other.slo &&
         policy == other.policy && window == other.window &&
         interval == other.interval && epoch == other.epoch &&
         seed == other.seed && cost == other.cost;
}

}  // namespace mcdc::scenlab
