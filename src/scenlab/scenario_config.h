// ScenarioConfig: one scenario of the discrete-event scenario lab.
//
// Bundles the load half (workload/scenario_gen.h: shape, population,
// diurnal/flash/Zipf knobs) with the network-time half (bandwidth, item
// size, per-server transfer slots, latency SLO) and the policy half
// (speculation window factor, monitoring interval, epoch length, adaptive
// on/off) behind one canonical to_string()/parse() pair, following the
// EngineConfig contract: keys in any order, defaults for omitted keys,
// parse(to_string()) round-trips exactly (property-tested at 200 cases),
// and errors name the offending key or token plus the valid choices.
#pragma once

#include <cstdint>
#include <string>

#include "workload/scenario_gen.h"

namespace mcdc::scenlab {

/// Which replica policy the network simulator runs.
enum class ScenarioPolicy : std::uint8_t {
  kStatic,    ///< SC at a fixed speculation factor (`window`)
  kAdaptive,  ///< AdaptiveController retunes window/epoch per interval
};

const char* to_string(ScenarioPolicy policy);

/// Parse "static" | "adaptive"; throws std::invalid_argument naming the
/// token and the valid choices.
ScenarioPolicy parse_scenario_policy(const char* name);

struct ScenarioConfig {
  /// Load model (family, population, rates, skew) — see
  /// workload/scenario_gen.h for field semantics.
  ScenarioLoadConfig load;

  // -- network realism --
  /// Link bandwidth: a transfer occupies its source for size/bandwidth
  /// simulated time units.
  double bandwidth = 20.0;
  /// Item size in the same units bandwidth moves per time unit.
  double item_size = 10.0;
  /// Concurrent outgoing transfers a server can source; further fetches
  /// queue FIFO until a slot frees.
  int transfer_slots = 4;
  /// Latency SLO: a request is "met" iff its serve latency <= slo (a local
  /// copy serves at latency 0; an in-flight or fresh fetch waits).
  double slo = 0.75;

  // -- policy --
  ScenarioPolicy policy = ScenarioPolicy::kStatic;
  /// Initial/static speculation factor: delta_t = window * lambda / mu.
  double window = 1.0;
  /// Monitoring interval for the measure-then-adapt loop.
  double interval = 2.0;
  /// Initial epoch length in transfers (0 = no epoch resets).
  std::uint64_t epoch = 0;

  std::uint64_t seed = 1;

  // -- cost model --
  /// "hom" (unit-ish homogeneous costs supplied by the caller) or
  /// "het:<spec>" with <spec> in the HeterogeneousCostModel::parse
  /// grammar (';'/'|' separated, comma-free — it nests inside this
  /// comma-separated form). parse() validates the spec eagerly and
  /// canonicalizes it; a het spec must be sized for `servers` (checked
  /// when the scenario runs, where both are finally known). Per-link
  /// transfers then cost lambda(u,v), occupy the source for a
  /// distance-scaled duration, and speculation windows become
  /// Delta t(u,v) = window * lambda(u,v) / mu(v).
  std::string cost = "hom";

  /// Canonical textual form, e.g.
  /// "family=diurnal,servers=8,items=64,users=100000,rate=0.0001,
  ///  duration=96,period=24,day_night=4,flash_every=24,flash_len=3,
  ///  flash_boost=6,flash_affinity=0.85,zipf_items=0.9,zipf_servers=0.6,
  ///  bw=20,size=10,slots=4,slo=0.75,policy=static,window=1,interval=2,
  ///  epoch=0,seed=1,cost=hom" (one line, no spaces). Doubles print in shortest
  /// round-trip form, so parse(to_string()) is exact.
  std::string to_string() const;

  /// Parse a comma-separated key=value list in the to_string() format.
  /// Keys may appear in any order and be omitted (defaults apply). Errors
  /// name the offending key or token and the valid choices and throw
  /// std::invalid_argument. Range violations (e.g. day_night < 1) are
  /// rejected here too, naming the key.
  static ScenarioConfig parse(const std::string& text);

  bool operator==(const ScenarioConfig& other) const;
};

}  // namespace mcdc::scenlab
