// run_scenario: one scenario end to end, four ways.
//
// Generates the load stream for the scenario's seed, then runs it through:
//
//   net-static    — the network-time simulator, SC at the configured
//                   static window factor;
//   net-adaptive  — the network-time simulator with the AdaptiveController
//                   retuning (window, epoch) every monitoring interval;
//   sc-instant    — the instantaneous-world SC via sim::policy_runner
//                   (per item, split_by_item), the paper's own regime;
//   opt           — the offline O(mn) DP lower bound per item.
//
// Every row reports total/caching/transfer cost, hit mix, SLO attainment,
// tail latency, and the competitive ratio against opt — the scenario-lab
// deliverable the bench and the trace_tool `scenario` subcommand print.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "workload/scenario_gen.h"

#include "scenlab/network_sim.h"
#include "scenlab/scenario_config.h"

namespace mcdc::scenlab {

struct ScenarioRow {
  std::string policy;
  Cost total = 0.0;
  Cost caching = 0.0;
  Cost transfer = 0.0;
  std::size_t transfers = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  /// Fraction of requests served within the SLO (instantaneous rows serve
  /// at latency 0, so theirs is 1 by construction).
  double slo_attainment = 1.0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  /// total / opt total (1 for the opt row itself; inf if opt is 0).
  double ratio = 1.0;
  /// Window factor at end of run (static rows: the configured factor).
  double final_factor = 1.0;
};

struct ScenarioReport {
  ScenarioConfig config;
  std::size_t requests = 0;
  std::size_t items_touched = 0;  ///< items with at least one request
  std::vector<FlashWindow> flashes;
  std::vector<ScenarioRow> rows;  ///< in run order (see run_scenario)

  const ScenarioRow* find(const std::string& policy) const;

  /// Human-readable summary: a header line plus a table of rows sorted by
  /// total cost (ascending — cheapest policy first), truncated to
  /// `max_rows` with a "(+N more rows by cost)" tail, following the
  /// ServiceReport::to_string conventions. 0 = no truncation.
  std::string to_string(std::size_t max_rows = 0) const;

  /// Machine-readable form for BENCH_scenarios.json / --json-out.
  std::string to_json() const;
};

/// Run all four rows of `cfg` under `cm` (CostModel converts implicitly —
/// the homogeneous path). Throws std::invalid_argument on invalid configs
/// (the message names the offending field).
///
/// Heterogeneous costs (cfg.cost = "het:<spec>" or a het `cm`; both at
/// once is a conflict): the network rows serve per-link costs, sc-instant
/// runs the core SC-het per item (cfg.epoch maps to epoch_transfers), and
/// opt solves each item through the heterogeneous solve_offline facade
/// (kAuto: exact oracle when the active-server count permits, the het
/// heuristic upper bound beyond — ratios are then measured against an
/// upper bound of OPT). An exactly-homogeneous matrix is dispatched to
/// the homogeneous row implementations, whose outputs it matches
/// bit-for-bit.
ScenarioReport run_scenario(const ScenarioConfig& cfg,
                            const ServingCostModel& cm);

}  // namespace mcdc::scenlab
