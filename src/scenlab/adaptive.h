// AdaptiveController: online retuning of the SC speculation window.
//
// The paper fixes delta_t = lambda / mu, the deterministic ski-rental
// break-even: a copy is kept exactly as long as its caching cost since the
// last use stays below one transfer. That is worst-case optimal but load-
// blind. When the per-pair request rate r is known, the expected-cost
// calculus changes: holding a copy one base window costs mu * delta_t =
// lambda and saves lambda per re-hit, so re-hits per window r * delta_t
// is the natural dial — above 1, longer holds pay for themselves (rent
// less, buy more); below 1, most holds expire unused and the window
// should shrink toward pure transfer-on-demand.
//
// The controller estimates r each monitoring interval as the REPEAT rate
// (requests - active_pairs) / (active_pairs * interval): active_pairs is
// the number of distinct (item, server) pairs that saw traffic, so the
// numerator counts only re-accesses — the events a held copy can convert
// into hits (a pair touched once pays its transfer no matter the window).
// The estimate is EWMA-smoothed and steers the window factor toward
// clamp(r * delta_base, lo, hi) with two overrides:
//
//   * waste guard — if more copies expired unused than were re-hit, the
//     window halves regardless of the rate estimate (the estimate lags
//     reality on the way down, e.g. at diurnal dusk);
//   * SLO pressure — if more than slo_miss_percent of requests missed
//     their latency SLO, the window doubles (more replicas -> more local
//     hits; network latency only shows where copies are absent).
//
// Epoch length retunes on the same signal: under sustained waste the
// controller installs a short epoch (collapse to one copy every few
// transfers) to prune replica sprawl, otherwise it restores the
// configured epoch. All of it is pure arithmetic on the interval stats —
// no clocks, no RNG — so adaptive runs replay bit-identically.
#pragma once

#include <cstddef>

#include "sim/policies.h"

namespace mcdc::scenlab {

struct AdaptiveOptions {
  /// Base speculation window lambda / mu (factor 1.0).
  double delta_base = 1.0;
  /// EWMA smoothing weight of the newest rate sample, in (0, 1].
  double ewma = 0.4;
  /// Window-factor clamp range.
  double clamp_lo = 0.25;
  double clamp_hi = 8.0;
  /// Per-step blend toward the target factor, in (0, 1].
  double blend = 0.5;
  /// SLO pressure threshold: misses * 100 > requests * slo_miss_percent
  /// doubles the window.
  double slo_miss_percent = 5.0;
  /// Epoch installed while the waste guard trips (0 = never prune).
  std::size_t prune_epoch = 8;
  /// Epoch restored in calm intervals (the scenario's configured epoch).
  std::size_t base_epoch = 0;
};

class AdaptiveController final : public WindowController {
 public:
  explicit AdaptiveController(const AdaptiveOptions& options);

  WindowDecision on_interval(const WindowIntervalStats& stats,
                             const WindowDecision& current) override;
  void reset() override;

  /// Smoothed per-pair request rate (requests per time unit); 0 until the
  /// first non-empty interval.
  double rate_estimate() const { return rate_ewma_; }

 private:
  AdaptiveOptions opt_;
  double rate_ewma_ = 0.0;
  bool warm_ = false;
};

}  // namespace mcdc::scenlab
