// Deterministic discrete-event queue for the scenario lab.
//
// A binary min-heap ordered by the total key (time, priority, seq): no
// wall clocks anywhere, and ties are broken first by event class (a
// transfer that completes at t lands before a request at t, so the
// request sees the arrived copy) and then by insertion sequence, so two
// runs that push the same events pop them in the same order — the
// determinism oracle in tests/fuzz_differential.cpp holds this to
// bit-identity over 1k seeds. Priorities are the EventKind order:
//
//   kTransferComplete (0) < kExpiry (1) < kRequest (2) < kMonitor (3)
//
// Expiry before request means a gap of exactly one window is a miss —
// the closed-window convention, documented in docs/SCENLAB.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace mcdc::scenlab {

enum class EventKind : std::uint8_t {
  kTransferComplete = 0,
  kExpiry = 1,
  kRequest = 2,
  kMonitor = 3,
};

struct Event {
  Time time = 0.0;
  EventKind kind = EventKind::kRequest;
  std::uint64_t seq = 0;  ///< assigned by the queue at push, breaks ties
  std::int32_t item = -1;
  std::int32_t server = -1;
  /// Kind-specific payload: request index (kRequest), copy generation
  /// (kExpiry), transfer id (kTransferComplete); unused for kMonitor.
  std::int64_t aux = 0;
};

/// Min-heap over (time, priority, seq). push() stamps the sequence number;
/// pop() returns the least element. Storage is a plain vector (sift-up /
/// sift-down in place), so steady-state push/pop never allocates once the
/// high-water mark is reached.
class EventQueue {
 public:
  EventQueue() = default;

  /// Reserve heap capacity up front (the simulator sizes it from the
  /// stream so the hot loop stays allocation-free).
  void reserve(std::size_t n) { heap_.reserve(n); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const Event& top() const { return heap_.front(); }

  /// Total events ever pushed (also the next sequence number).
  std::uint64_t pushed() const { return next_seq_; }
  std::size_t max_size() const { return max_size_; }

  /// Enqueue; `e.seq` is overwritten with the next sequence number, which
  /// is also returned.
  std::uint64_t push(Event e);

  /// Dequeue the least event by (time, priority, seq). Precondition:
  /// !empty().
  Event pop();

 private:
  static bool before(const Event& a, const Event& b);

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace mcdc::scenlab
