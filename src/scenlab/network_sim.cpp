#include "scenlab/network_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/latency_histogram.h"
#include "scenlab/event_queue.h"
#include "util/contracts.h"

namespace mcdc::scenlab {

namespace {

/// One replica slot: the state of (item, server). `gen` invalidates stale
/// expiry events (each refresh schedules a fresh one); `sourcing` counts
/// transfers (active or queued) reading from this copy — a sourcing copy
/// is never dropped, only doomed, and dies at its last completion.
struct CopySlot {
  bool present = false;
  bool doomed = false;
  Time expiry = 0.0;
  Time birth = 0.0;
  /// The transfer-cost edge this copy arrived over (cheapest_in for a
  /// born copy): its speculation window is factor * lam_in / mu_s for the
  /// copy's whole life, refreshed with the current factor. Equals the
  /// global lambda on the homogeneous path.
  double lam_in = 0.0;
  std::uint64_t gen = 0;
  std::uint64_t ordinal = 0;
  std::uint32_t sourcing = 0;
};

struct Transfer {
  int item = -1;
  ServerId src = kNoServer;
  ServerId dst = kNoServer;
  bool started = false;
  /// Requests waiting on this copy: (request index, arrival time).
  std::vector<std::pair<RequestIndex, Time>> waiters;
};

class NetworkSimulator {
 public:
  NetworkSimulator(const ScenarioConfig& cfg, const ServingCostModel& cm,
                   const std::vector<MultiItemRequest>& stream,
                   WindowController* controller)
      : cfg_(cfg),
        cm_(cm.hom()),
        het_hold_(cm.het_ptr()),
        het_(het_hold_.get()),
        stream_(stream),
        controller_(controller) {
    validate();
    const std::size_t slots =
        static_cast<std::size_t>(cfg_.load.num_items) *
        static_cast<std::size_t>(cfg_.load.num_servers);
    copies_.assign(slots, {});
    inflight_.assign(slots, 0);
    pair_mark_.assign(slots, 0);
    copy_count_.assign(static_cast<std::size_t>(cfg_.load.num_items), 0);
    last_req_.assign(static_cast<std::size_t>(cfg_.load.num_items), kNoServer);
    epoch_count_.assign(static_cast<std::size_t>(cfg_.load.num_items), 0);
    free_slots_.assign(static_cast<std::size_t>(cfg_.load.num_servers),
                       cfg_.transfer_slots);
    pending_.resize(static_cast<std::size_t>(cfg_.load.num_servers));
    decision_.factor = cfg_.window;
    decision_.epoch_transfers = static_cast<std::size_t>(cfg_.epoch);
    xfer_time_ = cfg_.item_size / cfg_.bandwidth;
  }

  NetworkRunResult run();

 private:
  std::size_t idx(int item, ServerId s) const {
    return static_cast<std::size_t>(item) *
               static_cast<std::size_t>(cfg_.load.num_servers) +
           static_cast<std::size_t>(s);
  }

  double mu_of(ServerId s) const {
    return het_ == nullptr ? cm_.mu : het_->mu(s);
  }
  double lambda_of(ServerId from, ServerId to) const {
    return het_ == nullptr ? cm_.lambda : het_->lambda(from, to);
  }
  /// The copy's speculation window under the current factor. Homogeneous
  /// lifts evaluate factor * lambda / mu in the same left-to-right order
  /// as the original global window, so they stay bit-identical.
  Time window_of(const CopySlot& c, ServerId s) const {
    return decision_.factor * c.lam_in / mu_of(s);
  }
  /// Link occupancy of a transfer: the base size/bw time scaled by how
  /// far the copy travels relative to the closest pair. Homogeneous:
  /// lambda/min_lambda == 1.0 exactly, so the duration is xfer_time_.
  Time xfer_dur(ServerId src, ServerId dst) const {
    return het_ == nullptr
               ? xfer_time_
               : xfer_time_ * (het_->lambda(src, dst) / het_->min_lambda());
  }

  void validate() const;
  void refresh(int item, ServerId s, Time now);
  void place_copy(int item, ServerId s, Time now, double lam_in);
  void drop_copy(int item, ServerId s, Time now);
  ServerId choose_source(int item, ServerId target) const;
  void start_or_queue(std::size_t tid, Time now);
  void sweep_lapsed(int item, Time now);
  void record_latency(Time latency);

  void handle_request(const Event& e);
  void handle_transfer_complete(const Event& e);
  void handle_expiry(const Event& e);
  void handle_monitor(const Event& e);

  const ScenarioConfig& cfg_;
  const CostModel cm_;  ///< homogeneous scalars (the fast path)
  const std::shared_ptr<const HeterogeneousCostModel> het_hold_;
  const HeterogeneousCostModel* het_;  ///< null = homogeneous
  const std::vector<MultiItemRequest>& stream_;
  WindowController* controller_;

  EventQueue queue_;
  std::vector<CopySlot> copies_;
  std::vector<std::int64_t> inflight_;  ///< (item, dst) -> transfer id + 1
  std::vector<Transfer> transfers_;
  std::vector<int> copy_count_;
  std::vector<std::uint8_t> born_;
  std::vector<ServerId> last_req_;
  std::vector<std::uint32_t> epoch_count_;
  std::vector<int> free_slots_;
  std::vector<std::deque<std::size_t>> pending_;

  WindowDecision decision_;
  WindowIntervalStats tick_;
  std::vector<std::uint64_t> pair_mark_;
  std::uint64_t tick_id_ = 1;

  obs::LatencyHistogram latency_;
  std::uint64_t counter_ = 0;
  Time xfer_time_ = 0.0;
  Time now_ = 0.0;

  NetworkRunResult out_;
};

void NetworkSimulator::validate() const {
  if (!(cfg_.bandwidth > 0.0)) {
    throw std::invalid_argument("NetworkSimulator: bandwidth must be > 0");
  }
  if (!(cfg_.item_size > 0.0)) {
    throw std::invalid_argument("NetworkSimulator: item_size must be > 0");
  }
  if (cfg_.transfer_slots < 1) {
    throw std::invalid_argument(
        "NetworkSimulator: transfer_slots must be >= 1");
  }
  if (!(cfg_.slo >= 0.0)) {
    throw std::invalid_argument("NetworkSimulator: slo must be >= 0");
  }
  if (!(cfg_.window > 0.0)) {
    throw std::invalid_argument("NetworkSimulator: window must be > 0");
  }
  if (controller_ != nullptr && !(cfg_.interval > 0.0)) {
    throw std::invalid_argument(
        "NetworkSimulator: a controller needs interval > 0");
  }
  if (het_ != nullptr && het_->m() != cfg_.load.num_servers) {
    throw std::invalid_argument(
        "NetworkSimulator: heterogeneous model is sized for " +
        std::to_string(het_->m()) + " servers, scenario for " +
        std::to_string(cfg_.load.num_servers));
  }
  for (const MultiItemRequest& r : stream_) {
    if (r.item < 0 || r.item >= cfg_.load.num_items || r.server < 0 ||
        r.server >= cfg_.load.num_servers) {
      throw std::invalid_argument(
          "NetworkSimulator: request outside the (items, servers) grid");
    }
  }
}

void NetworkSimulator::refresh(int item, ServerId s, Time now) {
  CopySlot& c = copies_[idx(item, s)];
  c.expiry = now + window_of(c, s);
  ++c.gen;
  c.ordinal = ++counter_;
  c.doomed = false;
  queue_.push({c.expiry, EventKind::kExpiry, 0, item, s,
               static_cast<std::int64_t>(c.gen)});
}

void NetworkSimulator::place_copy(int item, ServerId s, Time now,
                                  double lam_in) {
  CopySlot& c = copies_[idx(item, s)];
  MCDC_ASSERT(!c.present, "duplicate copy at (item %d, server %d)", item,
              static_cast<int>(s));
  c.present = true;
  c.birth = now;
  c.lam_in = lam_in;
  const int n = ++copy_count_[static_cast<std::size_t>(item)];
  if (static_cast<std::size_t>(n) > out_.max_copies) {
    out_.max_copies = static_cast<std::size_t>(n);
  }
  refresh(item, s, now);
}

void NetworkSimulator::drop_copy(int item, ServerId s, Time now) {
  CopySlot& c = copies_[idx(item, s)];
  MCDC_ASSERT(c.present && c.sourcing == 0, "dropping a live source");
  c.present = false;
  c.doomed = false;
  const Time seg = now - c.birth;
  out_.copy_time += seg;
  // Per-segment accrual (not one mu * copy_time multiply at the end) so
  // each server's own mu prices its copy time on the heterogeneous path.
  out_.caching_cost += mu_of(s) * seg;
  const int n = --copy_count_[static_cast<std::size_t>(item)];
  if (n < 1) {
    out_.feasible = false;
    out_.violations.push_back("item " + std::to_string(item) +
                              " left with no copy at t=" +
                              std::to_string(now));
  }
}

ServerId NetworkSimulator::choose_source(int item, ServerId target) const {
  const ServerId last = last_req_[static_cast<std::size_t>(item)];
  if (het_ != nullptr) {
    // Cheapest-lambda holder; ties prefer the last requesting server,
    // then the most-recently-used copy. With an all-equal matrix every
    // holder ties, so this reduces to the homogeneous rule below.
    ServerId best = kNoServer;
    double best_lam = 0.0;
    std::uint64_t best_ord = 0;
    for (ServerId s = 0; s < cfg_.load.num_servers; ++s) {
      const CopySlot& c = copies_[idx(item, s)];
      if (!c.present || s == target) continue;
      const double lam = het_->lambda(s, target);
      bool better;
      if (best == kNoServer || lam < best_lam) {
        better = true;
      } else if (lam > best_lam) {
        better = false;
      } else if (s == last) {
        better = true;
      } else if (best == last) {
        better = false;
      } else {
        better = c.ordinal >= best_ord;
      }
      if (better) {
        best = s;
        best_lam = lam;
        best_ord = c.ordinal;
      }
    }
    return best;
  }
  // Prefer the last requesting server (the SC discipline); fall back to
  // the most-recently-used holder.
  if (last != kNoServer && last != target && copies_[idx(item, last)].present) {
    return last;
  }
  ServerId best = kNoServer;
  std::uint64_t best_ord = 0;
  for (ServerId s = 0; s < cfg_.load.num_servers; ++s) {
    const CopySlot& c = copies_[idx(item, s)];
    if (!c.present || s == target) continue;
    if (best == kNoServer || c.ordinal >= best_ord) {
      best = s;
      best_ord = c.ordinal;
    }
  }
  return best;
}

void NetworkSimulator::start_or_queue(std::size_t tid, Time now) {
  Transfer& t = transfers_[tid];
  ++copies_[idx(t.item, t.src)].sourcing;
  int& free = free_slots_[static_cast<std::size_t>(t.src)];
  if (free > 0) {
    --free;
    t.started = true;
    queue_.push({now + xfer_dur(t.src, t.dst), EventKind::kTransferComplete, 0,
                 t.item, t.dst, static_cast<std::int64_t>(tid)});
  } else {
    pending_[static_cast<std::size_t>(t.src)].push_back(tid);
    ++out_.queued_transfers;
  }
}

void NetworkSimulator::sweep_lapsed(int item, Time now) {
  // The instantaneous policies' drop_due_copies, in network time: drop
  // every lapsed copy in (expiry, ordinal) order, never the last copy and
  // never a copy that transfers still read from.
  while (copy_count_[static_cast<std::size_t>(item)] > 1) {
    ServerId victim = kNoServer;
    for (ServerId s = 0; s < cfg_.load.num_servers; ++s) {
      const CopySlot& c = copies_[idx(item, s)];
      if (!c.present || c.sourcing > 0) continue;
      if (c.expiry > now + kEps) continue;
      if (victim == kNoServer) {
        victim = s;
        continue;
      }
      const CopySlot& v = copies_[idx(item, victim)];
      if (c.expiry < v.expiry - kEps ||
          (almost_equal(c.expiry, v.expiry) && c.ordinal < v.ordinal)) {
        victim = s;
      }
    }
    if (victim == kNoServer) break;
    drop_copy(item, victim, now);
    ++out_.expirations;
    ++tick_.expirations;
  }
}

void NetworkSimulator::record_latency(Time latency) {
  latency_.record(static_cast<std::uint64_t>(
      std::llround(std::max(0.0, latency) * 1e9)));
  if (latency <= cfg_.slo + kEps) {
    ++out_.slo_met;
  } else {
    ++out_.slo_missed;
    ++tick_.slo_missed;
  }
}

void NetworkSimulator::handle_request(const Event& e) {
  const int item = e.item;
  const ServerId s = e.server;
  ++out_.requests;
  ++tick_.requests;
  if (pair_mark_[idx(item, s)] != tick_id_) {
    pair_mark_[idx(item, s)] = tick_id_;
    ++tick_.active_pairs;
  }

  if (born_[static_cast<std::size_t>(item)] == 0) {
    // The item is born where it is first requested (split_by_item's
    // convention): a free local hit, caching starts accruing here. A born
    // copy's window edge is its cheapest inbound lambda (no transfer
    // brought it, matching the SC core's origin-copy convention).
    born_[static_cast<std::size_t>(item)] = 1;
    place_copy(item, s, e.time,
               het_ == nullptr ? cm_.lambda : het_->cheapest_in(s));
    ++out_.hits;
    ++tick_.hits;
    record_latency(0.0);
  } else if (copies_[idx(item, s)].present) {
    ++out_.hits;
    ++tick_.hits;
    refresh(item, s, e.time);
    record_latency(0.0);
  } else if (inflight_[idx(item, s)] != 0) {
    ++out_.misses;
    ++tick_.misses;
    ++out_.joins;
    transfers_[static_cast<std::size_t>(inflight_[idx(item, s)] - 1)]
        .waiters.emplace_back(static_cast<RequestIndex>(e.aux), e.time);
  } else {
    ++out_.misses;
    ++tick_.misses;
    const ServerId src = choose_source(item, s);
    MCDC_ASSERT(src != kNoServer, "no source for item %d", item);
    const std::size_t tid = transfers_.size();
    Transfer t;
    t.item = item;
    t.src = src;
    t.dst = s;
    t.waiters.emplace_back(static_cast<RequestIndex>(e.aux), e.time);
    transfers_.push_back(std::move(t));
    inflight_[idx(item, s)] = static_cast<std::int64_t>(tid) + 1;
    refresh(item, src, e.time);  // the source is serving: fresh window
    start_or_queue(tid, e.time);
  }
  last_req_[static_cast<std::size_t>(item)] = s;
}

void NetworkSimulator::handle_transfer_complete(const Event& e) {
  Transfer& t = transfers_[static_cast<std::size_t>(e.aux)];
  const int item = t.item;

  const double edge = lambda_of(t.src, t.dst);
  out_.transfer_cost += edge;
  ++out_.transfers;
  inflight_[idx(item, t.dst)] = 0;
  place_copy(item, t.dst, e.time, edge);
  for (const auto& [req, arrival] : t.waiters) {
    (void)req;
    record_latency(e.time - arrival);
  }
  t.waiters.clear();

  // Release the source: slot back, maybe start the next queued fetch.
  CopySlot& src = copies_[idx(item, t.src)];
  MCDC_ASSERT(src.sourcing > 0, "completion without a sourcing mark");
  --src.sourcing;
  int& free = free_slots_[static_cast<std::size_t>(t.src)];
  ++free;
  std::deque<std::size_t>& q = pending_[static_cast<std::size_t>(t.src)];
  if (!q.empty()) {
    const std::size_t next = q.front();
    q.pop_front();
    --free;
    transfers_[next].started = true;
    queue_.push({e.time + xfer_dur(transfers_[next].src, transfers_[next].dst),
                 EventKind::kTransferComplete, 0, transfers_[next].item,
                 transfers_[next].dst, static_cast<std::int64_t>(next)});
  }
  if (src.doomed && src.sourcing == 0 &&
      copy_count_[static_cast<std::size_t>(item)] > 1) {
    drop_copy(item, t.src, e.time);
    ++out_.expirations;
    ++tick_.expirations;
  }
  sweep_lapsed(item, e.time);

  // Epoch discipline: after `epoch_transfers` transfers of this item,
  // collapse to the copy that just landed.
  if (decision_.epoch_transfers > 0 &&
      ++epoch_count_[static_cast<std::size_t>(item)] >=
          decision_.epoch_transfers) {
    epoch_count_[static_cast<std::size_t>(item)] = 0;
    for (ServerId s = 0; s < cfg_.load.num_servers; ++s) {
      if (s == t.dst) continue;
      CopySlot& c = copies_[idx(item, s)];
      if (!c.present) continue;
      if (copy_count_[static_cast<std::size_t>(item)] <= 1) break;
      if (c.sourcing > 0) {
        c.doomed = true;
      } else {
        drop_copy(item, s, e.time);
        ++out_.expirations;
        ++tick_.expirations;
      }
    }
  }
}

void NetworkSimulator::handle_expiry(const Event& e) {
  CopySlot& c = copies_[idx(e.item, e.server)];
  if (!c.present || c.gen != static_cast<std::uint64_t>(e.aux)) {
    return;  // superseded by a refresh (or the copy is already gone)
  }
  if (copy_count_[static_cast<std::size_t>(e.item)] <= 1) {
    return;  // the last copy is pinned; it stays (lapsed) until refreshed
  }
  if (c.sourcing > 0) {
    c.doomed = true;  // still feeding transfers; dies at last completion
    return;
  }
  drop_copy(e.item, e.server, e.time);
  ++out_.expirations;
  ++tick_.expirations;
}

void NetworkSimulator::handle_monitor(const Event& e) {
  tick_.interval = cfg_.interval;
  decision_ = controller_->on_interval(tick_, decision_);
  if (!(decision_.factor > 0.0)) decision_.factor = 1.0;
  tick_ = {};
  ++tick_id_;
  ++out_.monitor_intervals;
  const Time next = e.time + cfg_.interval;
  if (next <= cfg_.load.duration + kEps) {
    queue_.push({next, EventKind::kMonitor, 0, -1, kNoServer, 0});
  }
}

NetworkRunResult NetworkSimulator::run() {
  out_.policy_name = controller_ == nullptr ? "net-static" : "net-adaptive";
  born_.assign(static_cast<std::size_t>(cfg_.load.num_items), 0);
  queue_.reserve(stream_.size() + 64);
  for (std::size_t i = 0; i < stream_.size(); ++i) {
    const MultiItemRequest& r = stream_[i];
    queue_.push({r.time, EventKind::kRequest, 0, r.item, r.server,
                 static_cast<std::int64_t>(i)});
  }
  if (controller_ != nullptr) {
    controller_->reset();
    queue_.push({cfg_.interval, EventKind::kMonitor, 0, -1, kNoServer, 0});
  }

  while (!queue_.empty()) {
    const Event e = queue_.pop();
    if (e.kind == EventKind::kExpiry && e.time > cfg_.load.duration + kEps) {
      continue;  // past run end: survivors accrue to the horizon instead
    }
    MCDC_ASSERT(e.time >= now_ - kEps, "time went backwards");
    now_ = std::max(now_, e.time);
    ++out_.events;
    switch (e.kind) {
      case EventKind::kRequest:
        handle_request(e);
        break;
      case EventKind::kTransferComplete:
        handle_transfer_complete(e);
        break;
      case EventKind::kExpiry:
        handle_expiry(e);
        break;
      case EventKind::kMonitor:
        handle_monitor(e);
        break;
    }
  }

  out_.horizon = std::max(cfg_.load.duration, now_);
  for (int item = 0; item < cfg_.load.num_items; ++item) {
    if (born_[static_cast<std::size_t>(item)] == 0) continue;
    if (copy_count_[static_cast<std::size_t>(item)] < 1) {
      out_.feasible = false;
      out_.violations.push_back("item " + std::to_string(item) +
                                " ends with no copy");
    }
    for (ServerId s = 0; s < cfg_.load.num_servers; ++s) {
      const CopySlot& c = copies_[idx(item, s)];
      if (c.present) {
        const Time seg = out_.horizon - c.birth;
        out_.copy_time += seg;
        out_.caching_cost += mu_of(s) * seg;
      }
    }
  }
  out_.total_cost = out_.caching_cost + out_.transfer_cost;
  MCDC_INVARIANT(
      almost_equal(out_.total_cost, out_.caching_cost + out_.transfer_cost),
      "cost reconciliation");
  MCDC_INVARIANT(out_.hits + out_.misses == out_.requests,
                 "hit/miss accounting");

  const obs::LatencyHistogramSnapshot snap = latency_.snapshot();
  out_.latency_p50 = snap.p50_ns() / 1e9;
  out_.latency_p99 = snap.p99_ns() / 1e9;
  out_.latency_mean = snap.mean_ns() / 1e9;
  out_.latency_max = static_cast<double>(snap.max_ns) / 1e9;
  out_.max_queue = queue_.max_size();
  out_.final_factor = decision_.factor;
  out_.final_epoch = decision_.epoch_transfers;
  return out_;
}

}  // namespace

NetworkRunResult run_network_sim(const ScenarioConfig& cfg,
                                 const ServingCostModel& cm,
                                 const std::vector<MultiItemRequest>& stream,
                                 WindowController* controller) {
  // Resolve cfg.cost against the explicit model, mirroring the engine's
  // rule: the string form may select heterogeneity, but two heterogeneous
  // sources conflict.
  ServingCostModel effective = cm;
  if (cfg.cost != "hom") {
    if (cfg.cost.rfind("het:", 0) != 0) {
      throw std::invalid_argument(
          "run_network_sim: ScenarioConfig::cost must be \"hom\" or "
          "\"het:<spec>\", got \"" + cfg.cost + "\"");
    }
    if (cm.heterogeneous()) {
      throw std::invalid_argument(
          "run_network_sim: both the cost-model argument and "
          "ScenarioConfig::cost are heterogeneous — pick one");
    }
    effective =
        ServingCostModel(HeterogeneousCostModel::parse(cfg.cost.substr(4)));
  }
  NetworkSimulator sim(cfg, effective, stream, controller);
  return sim.run();
}

}  // namespace mcdc::scenlab
