// Operational replay of a Schedule against a RequestSequence.
//
// Where model/schedule_validator.h checks feasibility declaratively, this
// executor *runs* the schedule through a discrete event sweep: cache
// interval starts/ends, transfers and requests become timestamped events;
// replica occupancy is tracked instant by instant; costs are metered
// independently of Schedule::cost(). Tests require the two cost paths to
// agree, and benches use the occupancy statistics (peak/mean replicas) the
// declarative view cannot provide.
#pragma once

#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/request.h"
#include "model/schedule.h"

namespace mcdc {

namespace obs {
class Observer;
}  // namespace obs

struct ExecutionReport {
  bool ok = true;
  std::vector<std::string> errors;

  Cost measured_caching_cost = 0.0;
  Cost measured_transfer_cost = 0.0;
  Cost measured_total_cost = 0.0;

  std::size_t requests_served_by_cache = 0;
  std::size_t requests_served_by_transfer = 0;

  std::size_t peak_replicas = 0;
  double mean_replicas = 0.0;  ///< time-averaged over [t_0, t_n]

  std::string to_string() const;
};

/// Replay `schedule` for `seq` under `cm`. The schedule should be
/// normalized (the executor normalizes a copy if needed). When `observer`
/// is set, the sweep emits one event per request/transfer/interval and
/// feeds the `executor_replay_us` histogram.
ExecutionReport execute_schedule(const Schedule& schedule,
                                 const RequestSequence& seq, const CostModel& cm,
                                 obs::Observer* observer = nullptr);

}  // namespace mcdc
