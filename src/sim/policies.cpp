#include "sim/policies.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace mcdc {

namespace {

/// Drop every due copy (expiry <= now) in (expiry, ordinal) order, never
/// touching the last copy — the shared expiration discipline of the
/// window-based policies (paper §V step 4 incl. the tie and last-copy
/// rules).
template <typename ExpiryVec, typename OrdinalVec>
void drop_due_copies(ReplicaContext& ctx, const ExpiryVec& expiry,
                     const OrdinalVec& ordinal) {
  while (ctx.copy_count() > 1) {
    ServerId victim = kNoServer;
    for (const ServerId h : ctx.holders()) {
      if (expiry[static_cast<std::size_t>(h)] > ctx.now() + kEps) continue;
      if (victim == kNoServer ||
          expiry[static_cast<std::size_t>(h)] <
              expiry[static_cast<std::size_t>(victim)] - kEps ||
          (almost_equal(expiry[static_cast<std::size_t>(h)],
                        expiry[static_cast<std::size_t>(victim)]) &&
           ordinal[static_cast<std::size_t>(h)] <
               ordinal[static_cast<std::size_t>(victim)])) {
        victim = h;
      }
    }
    if (victim == kNoServer) break;
    ctx.drop(victim);
  }
}

}  // namespace

// ---------------- ScSimPolicy ----------------

ScSimPolicy::ScSimPolicy(const CostModel& cm, ServerId origin,
                         std::size_t epoch_transfers, double speculation_factor)
    : delta_t_(speculation_factor * cm.lambda / cm.mu),
      epoch_limit_(epoch_transfers),
      last_request_server_(origin) {}

void ScSimPolicy::on_start(ReplicaContext& ctx) {
  expiry_.assign(static_cast<std::size_t>(ctx.num_servers()), 0.0);
  ordinal_.assign(static_cast<std::size_t>(ctx.num_servers()), 0);
  refresh(ctx, last_request_server_);
}

void ScSimPolicy::refresh(ReplicaContext& ctx, ServerId s) {
  expiry_[static_cast<std::size_t>(s)] = ctx.now() + delta_t_;
  ordinal_[static_cast<std::size_t>(s)] = ++counter_;
  ctx.wake_at(ctx.now() + delta_t_);
}

void ScSimPolicy::on_request(ReplicaContext& ctx, ServerId server,
                             RequestIndex /*index*/) {
  if (ctx.has_copy(server)) {
    refresh(ctx, server);
  } else {
    ServerId src = last_request_server_;
    if (!ctx.has_copy(src) || src == server) {
      // Defensive: fall back to the most recently used holder.
      std::uint64_t best = 0;
      src = kNoServer;
      for (const ServerId h : ctx.holders()) {
        if (src == kNoServer || ordinal_[static_cast<std::size_t>(h)] >= best) {
          best = ordinal_[static_cast<std::size_t>(h)];
          src = h;
        }
      }
    }
    ctx.transfer(src, server);
    refresh(ctx, src);     // the source gets a fresh window too (step 3)
    refresh(ctx, server);  // target refreshed after: the tie rule keeps it

    if (++epoch_transfers_ >= epoch_limit_) {
      for (const ServerId h : ctx.holders()) {
        if (h != server) ctx.drop(h);
      }
      epoch_transfers_ = 0;
    }
  }
  last_request_server_ = server;
}

void ScSimPolicy::on_wake(ReplicaContext& ctx) {
  drop_due_copies(ctx, expiry_, ordinal_);
}

// ---------------- AlwaysMigratePolicy ----------------

void AlwaysMigratePolicy::on_request(ReplicaContext& ctx, ServerId server,
                                     RequestIndex /*index*/) {
  if (server == holder_) return;
  ctx.transfer(holder_, server);
  ctx.drop(holder_);
  holder_ = server;
}

// ---------------- StaticHomePolicy ----------------

void StaticHomePolicy::on_request(ReplicaContext& ctx, ServerId server,
                                  RequestIndex /*index*/) {
  if (server == home_) return;
  ctx.transfer(home_, server);
  ctx.drop(server);  // serve and discard immediately
}

// ---------------- FullReplicationPolicy ----------------

void FullReplicationPolicy::on_request(ReplicaContext& ctx, ServerId server,
                                       RequestIndex /*index*/) {
  if (!ctx.has_copy(server)) {
    const ServerId src = ctx.has_copy(last_) ? last_ : ctx.holders().front();
    ctx.transfer(src, server);
  }
  last_ = server;
}

// ---------------- LruKPolicy ----------------

LruKPolicy::LruKPolicy(int num_servers, ServerId origin, std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)), last_(origin) {
  last_use_.assign(static_cast<std::size_t>(num_servers), 0);
  last_use_[static_cast<std::size_t>(origin)] = ++counter_;
}

void LruKPolicy::on_request(ReplicaContext& ctx, ServerId server,
                            RequestIndex /*index*/) {
  if (!ctx.has_copy(server)) {
    const ServerId src = ctx.has_copy(last_) ? last_ : ctx.holders().front();
    ctx.transfer(src, server);
  }
  last_use_[static_cast<std::size_t>(server)] = ++counter_;
  last_ = server;
  while (ctx.copy_count() > capacity_) {
    ServerId victim = kNoServer;
    for (const ServerId h : ctx.holders()) {
      if (h == server) continue;
      if (victim == kNoServer || last_use_[static_cast<std::size_t>(h)] <
                                     last_use_[static_cast<std::size_t>(victim)]) {
        victim = h;
      }
    }
    if (victim == kNoServer) break;
    ctx.drop(victim);
  }
}

// ---------------- TunableScPolicy ----------------

TunableScPolicy::TunableScPolicy(const CostModel& cm, ServerId origin,
                                 Time interval, WindowController* controller,
                                 WindowDecision initial)
    : delta_base_(cm.lambda / cm.mu),
      interval_(interval),
      controller_(controller),
      decision_(initial),
      last_request_server_(origin) {
  if (decision_.factor <= 0.0) decision_.factor = 1.0;
  if (controller_ != nullptr && !(interval_ > 0.0)) {
    throw std::invalid_argument(
        "TunableScPolicy: a controller needs interval > 0");
  }
}

void TunableScPolicy::on_start(ReplicaContext& ctx) {
  expiry_.assign(static_cast<std::size_t>(ctx.num_servers()), 0.0);
  ordinal_.assign(static_cast<std::size_t>(ctx.num_servers()), 0);
  pair_mark_.assign(static_cast<std::size_t>(ctx.num_servers()), 0);
  tick_id_ = 1;
  tick_ = {};
  tick_.interval = interval_;
  if (controller_ != nullptr) {
    controller_->reset();
    next_monitor_ = interval_;
    ctx.wake_at(next_monitor_);
  }
  refresh(ctx, last_request_server_);
}

void TunableScPolicy::refresh(ReplicaContext& ctx, ServerId s) {
  expiry_[static_cast<std::size_t>(s)] = ctx.now() + window();
  ordinal_[static_cast<std::size_t>(s)] = ++counter_;
  ctx.wake_at(expiry_[static_cast<std::size_t>(s)]);
}

void TunableScPolicy::on_request(ReplicaContext& ctx, ServerId server,
                                 RequestIndex /*index*/) {
  ++tick_.requests;
  if (pair_mark_[static_cast<std::size_t>(server)] != tick_id_) {
    pair_mark_[static_cast<std::size_t>(server)] = tick_id_;
    ++tick_.active_pairs;
  }
  if (ctx.has_copy(server)) {
    ++tick_.hits;
    refresh(ctx, server);
  } else {
    ++tick_.misses;
    ServerId src = last_request_server_;
    if (!ctx.has_copy(src) || src == server) {
      std::uint64_t best = 0;
      src = kNoServer;
      for (const ServerId h : ctx.holders()) {
        if (src == kNoServer || ordinal_[static_cast<std::size_t>(h)] >= best) {
          best = ordinal_[static_cast<std::size_t>(h)];
          src = h;
        }
      }
    }
    ctx.transfer(src, server);
    refresh(ctx, src);     // source serves the transfer: fresh window
    refresh(ctx, server);  // target refreshed after: the tie rule keeps it
    if (decision_.epoch_transfers > 0 &&
        ++epoch_transfers_ >= decision_.epoch_transfers) {
      for (const ServerId h : ctx.holders()) {
        if (h != server) ctx.drop(h);
      }
      epoch_transfers_ = 0;
    }
  }
  last_request_server_ = server;
}

void TunableScPolicy::monitor_tick(ReplicaContext& ctx) {
  while (controller_ != nullptr && ctx.now() >= next_monitor_ - kEps) {
    tick_.interval = interval_;
    decision_ = controller_->on_interval(tick_, decision_);
    if (decision_.factor <= 0.0) decision_.factor = 1.0;
    tick_ = {};
    ++tick_id_;
    next_monitor_ += interval_;
    ctx.wake_at(next_monitor_);
  }
}

void TunableScPolicy::on_wake(ReplicaContext& ctx) {
  const std::size_t before = ctx.copy_count();
  drop_due_copies(ctx, expiry_, ordinal_);
  tick_.expirations += before - ctx.copy_count();
  monitor_tick(ctx);
}

// ---------------- RandomizedSkiRentalPolicy ----------------

RandomizedSkiRentalPolicy::RandomizedSkiRentalPolicy(const CostModel& cm,
                                                     ServerId origin, Rng& rng)
    : delta_t_(cm.lambda / cm.mu), rng_(&rng), last_request_server_(origin) {}

double RandomizedSkiRentalPolicy::sample_window() {
  // Inverse-CDF sample of the optimal randomized ski-rental density
  // f(x) = e^x / (e - 1) on [0, 1), scaled to the deterministic window.
  const double u = rng_->uniform();
  return delta_t_ * std::log(1.0 + u * (std::numbers::e - 1.0));
}

void RandomizedSkiRentalPolicy::on_start(ReplicaContext& ctx) {
  expiry_.assign(static_cast<std::size_t>(ctx.num_servers()), 0.0);
  window_.assign(static_cast<std::size_t>(ctx.num_servers()), delta_t_);
  ordinal_.assign(static_cast<std::size_t>(ctx.num_servers()), 0);
  window_[static_cast<std::size_t>(last_request_server_)] = sample_window();
  refresh(ctx, last_request_server_);
}

void RandomizedSkiRentalPolicy::refresh(ReplicaContext& ctx, ServerId s) {
  expiry_[static_cast<std::size_t>(s)] =
      ctx.now() + window_[static_cast<std::size_t>(s)];
  ordinal_[static_cast<std::size_t>(s)] = ++counter_;
  ctx.wake_at(expiry_[static_cast<std::size_t>(s)]);
}

void RandomizedSkiRentalPolicy::on_request(ReplicaContext& ctx, ServerId server,
                                           RequestIndex /*index*/) {
  if (ctx.has_copy(server)) {
    refresh(ctx, server);
  } else {
    ServerId src = last_request_server_;
    if (!ctx.has_copy(src) || src == server) {
      std::uint64_t best = 0;
      src = kNoServer;
      for (const ServerId h : ctx.holders()) {
        if (src == kNoServer || ordinal_[static_cast<std::size_t>(h)] >= best) {
          best = ordinal_[static_cast<std::size_t>(h)];
          src = h;
        }
      }
    }
    ctx.transfer(src, server);
    window_[static_cast<std::size_t>(server)] = sample_window();
    refresh(ctx, src);
    refresh(ctx, server);
  }
  last_request_server_ = server;
}

void RandomizedSkiRentalPolicy::on_wake(ReplicaContext& ctx) {
  drop_due_copies(ctx, expiry_, ordinal_);
}

}  // namespace mcdc
