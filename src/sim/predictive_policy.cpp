#include "sim/predictive_policy.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mcdc {

namespace {

std::vector<std::vector<Time>> times_by_server(const RequestSequence& seq) {
  std::vector<std::vector<Time>> by(static_cast<std::size_t>(seq.m()));
  for (RequestIndex i = 1; i <= seq.n(); ++i) {
    by[static_cast<std::size_t>(seq.server(i))].push_back(seq.time(i));
  }
  return by;
}

Time true_gap(const std::vector<std::vector<Time>>& by, ServerId s, Time now) {
  const auto& v = by[static_cast<std::size_t>(s)];
  auto it = std::upper_bound(v.begin(), v.end(), now + kEps);
  if (it == v.end()) return std::numeric_limits<Time>::infinity();
  return *it - now;
}

/// Shared expiration discipline (same as policies.cpp): drop every due
/// copy in (expiry, ordinal) order, never touching the last copy.
void drop_due(ReplicaContext& ctx, const std::vector<Time>& expiry,
              const std::vector<std::uint64_t>& ordinal) {
  while (ctx.copy_count() > 1) {
    ServerId victim = kNoServer;
    for (const ServerId h : ctx.holders()) {
      if (expiry[static_cast<std::size_t>(h)] > ctx.now() + kEps) continue;
      if (victim == kNoServer ||
          expiry[static_cast<std::size_t>(h)] <
              expiry[static_cast<std::size_t>(victim)] - kEps ||
          (almost_equal(expiry[static_cast<std::size_t>(h)],
                        expiry[static_cast<std::size_t>(victim)]) &&
           ordinal[static_cast<std::size_t>(h)] <
               ordinal[static_cast<std::size_t>(victim)])) {
        victim = h;
      }
    }
    if (victim == kNoServer) break;
    ctx.drop(victim);
  }
}

}  // namespace

NextUseOracle make_sequence_oracle(const RequestSequence& seq, double noise,
                                   Rng& rng) {
  auto by = times_by_server(seq);
  Rng* noise_rng = &rng;
  return [by = std::move(by), noise, noise_rng](ServerId s, RequestIndex,
                                                Time now) -> Time {
    const Time gap = true_gap(by, s, now);
    if (std::isinf(gap) || noise <= 0.0) return gap;
    return gap * std::exp(noise * noise_rng->normal());
  };
}

NextUseOracle make_adversarial_oracle(const RequestSequence& seq, Time delta_t) {
  auto by = times_by_server(seq);
  return [by = std::move(by), delta_t](ServerId s, RequestIndex, Time now) -> Time {
    const Time gap = true_gap(by, s, now);
    // Lie exactly across the keep/drop threshold.
    if (gap <= delta_t) return 10.0 * delta_t;
    return 0.5 * delta_t;
  };
}

PredictiveScPolicy::PredictiveScPolicy(const CostModel& cm, ServerId origin,
                                       NextUseOracle oracle)
    : delta_t_(cm.lambda / cm.mu),
      oracle_(std::move(oracle)),
      last_request_server_(origin) {}

void PredictiveScPolicy::on_start(ReplicaContext& ctx) {
  expiry_.assign(static_cast<std::size_t>(ctx.num_servers()), 0.0);
  ordinal_.assign(static_cast<std::size_t>(ctx.num_servers()), 0);
  place_window(ctx, last_request_server_, 0);
}

void PredictiveScPolicy::place_window(ReplicaContext& ctx, ServerId s,
                                      RequestIndex index) {
  const Time predicted = oracle_(s, index, ctx.now());
  // Trust the prediction, capped by SC's window: keep the copy when the
  // next use is predicted inside delta_t, drop right away otherwise.
  const Time horizon =
      predicted <= delta_t_ ? ctx.now() + delta_t_ : ctx.now();
  expiry_[static_cast<std::size_t>(s)] = horizon;
  ordinal_[static_cast<std::size_t>(s)] = ++counter_;
  ctx.wake_at(horizon);
}

void PredictiveScPolicy::on_request(ReplicaContext& ctx, ServerId server,
                                    RequestIndex index) {
  if (!ctx.has_copy(server)) {
    ServerId src = last_request_server_;
    if (!ctx.has_copy(src) || src == server) {
      std::uint64_t best = 0;
      src = kNoServer;
      for (const ServerId h : ctx.holders()) {
        if (src == kNoServer || ordinal_[static_cast<std::size_t>(h)] >= best) {
          best = ordinal_[static_cast<std::size_t>(h)];
          src = h;
        }
      }
    }
    ctx.transfer(src, server);
    place_window(ctx, src, index);
  }
  place_window(ctx, server, index);
  last_request_server_ = server;
  drop_due(ctx, expiry_, ordinal_);
}

void PredictiveScPolicy::on_wake(ReplicaContext& ctx) {
  drop_due(ctx, expiry_, ordinal_);
}

}  // namespace mcdc
