#include "sim/executor.h"

#include <algorithm>
#include <sstream>

#include "obs/observer.h"
#include "obs/scoped_timer.h"
#include "util/contracts.h"

namespace mcdc {

namespace {

enum class EventKind : int {
  // Processing order at equal timestamps matters: interval starts open
  // before transfers fire (a transfer may be sourced from an interval
  // opening at the same instant only via its own arrival — disallowed), and
  // requests are checked before intervals close (closed-interval service).
  kCacheStart = 0,
  kTransfer = 1,
  kRequest = 2,
  kCacheEnd = 3,
};

struct Event {
  Time at = 0.0;
  EventKind kind = EventKind::kRequest;
  int payload = 0;  // index into caches/transfers/request index
};

}  // namespace

std::string ExecutionReport::to_string() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAILED") << " caching=" << measured_caching_cost
     << " transfer=" << measured_transfer_cost << " total=" << measured_total_cost
     << " peak_replicas=" << peak_replicas << " mean_replicas=" << mean_replicas;
  for (const auto& e : errors) os << "\n  error: " << e;
  return os.str();
}

ExecutionReport execute_schedule(const Schedule& schedule,
                                 const RequestSequence& seq, const CostModel& cm,
                                 obs::Observer* observer) {
  obs::ScopedTimer replay_timer(observer != nullptr ? observer->executor_replay_us()
                                                    : nullptr);
  ExecutionReport rep;
  auto fail = [&rep](const std::string& msg) {
    rep.ok = false;
    rep.errors.push_back(msg);
  };

  Schedule s = schedule;
  s.normalize();

  std::vector<Event> events;
  events.reserve(s.caches().size() * 2 + s.transfers().size() + seq.n());
  for (std::size_t i = 0; i < s.caches().size(); ++i) {
    events.push_back({s.caches()[i].start, EventKind::kCacheStart, static_cast<int>(i)});
    events.push_back({s.caches()[i].end, EventKind::kCacheEnd, static_cast<int>(i)});
  }
  for (std::size_t i = 0; i < s.transfers().size(); ++i) {
    events.push_back({s.transfers()[i].at, EventKind::kTransfer, static_cast<int>(i)});
  }
  for (RequestIndex i = 1; i <= seq.n(); ++i) {
    events.push_back({seq.time(i), EventKind::kRequest, i});
  }
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (!almost_equal(a.at, b.at)) return a.at < b.at;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });

  std::vector<int> replicas(static_cast<std::size_t>(seq.m()), 0);
  std::size_t alive = 0;
  Time clock = seq.time(0);
  const Time horizon = seq.time(seq.n());
  double occupancy_integral = 0.0;

  // A transfer's target may be served and discarded instantly (no interval):
  // remember same-instant arrivals for the request check.
  Time arrivals_at = -1.0;
  std::vector<ServerId> arrivals;

  for (const auto& ev : events) {
    // Event time is monotone after the stable sort, so every cost delta
    // booked below (mu * alive * dt and one lambda per transfer) is
    // non-negative — the executor can only add cost, never retract it.
    MCDC_INVARIANT(less_or_equal(clock, ev.at),
                   "event at t=%g precedes the replay clock %g", ev.at, clock);
    if (ev.at > clock) {
      if (alive == 0 && clock < horizon - kEps) {
        std::ostringstream os;
        os << "no replica alive in (" << clock << ", " << std::min(ev.at, horizon)
           << ")";
        fail(os.str());
      }
      const Time upto = std::min(ev.at, horizon);
      if (upto > clock) {
        occupancy_integral += static_cast<double>(alive) * (upto - clock);
        rep.measured_caching_cost += cm.mu * static_cast<double>(alive) * (ev.at - clock);
      } else {
        rep.measured_caching_cost += cm.mu * static_cast<double>(alive) * (ev.at - clock);
      }
      clock = ev.at;
    }
    if (!almost_equal(arrivals_at, clock)) {
      arrivals.clear();
      arrivals_at = clock;
    }

    switch (ev.kind) {
      case EventKind::kCacheStart: {
        const auto& c = s.caches()[static_cast<std::size_t>(ev.payload)];
        ++replicas[static_cast<std::size_t>(c.server)];
        if (replicas[static_cast<std::size_t>(c.server)] > 1) {
          fail("overlapping cache intervals on one server after normalize");
        }
        ++alive;
        rep.peak_replicas = std::max(rep.peak_replicas, alive);
        if (observer != nullptr) observer->copy_born(-1, c.server, ev.at);
        break;
      }
      case EventKind::kCacheEnd: {
        const auto& c = s.caches()[static_cast<std::size_t>(ev.payload)];
        MCDC_ASSERT(replicas[static_cast<std::size_t>(c.server)] > 0 && alive > 0,
                    "interval end on s%d with no open interval", c.server + 1);
        --replicas[static_cast<std::size_t>(c.server)];
        --alive;
        if (observer != nullptr) {
          observer->copy_expired(-1, c.server, ev.at, /*expired=*/false,
                                 cm.mu * (c.end - c.start));
        }
        break;
      }
      case EventKind::kTransfer: {
        const auto& t = s.transfers()[static_cast<std::size_t>(ev.payload)];
        rep.measured_transfer_cost += cm.lambda;
        if (observer != nullptr) {
          observer->transfer_issued(-1, kNoRequest, t.from, t.to, t.at,
                                    cm.lambda);
        }
        if (replicas[static_cast<std::size_t>(t.from)] <= 0) {
          std::ostringstream os;
          os << "transfer at t=" << t.at << " from s" << t.from + 1
             << " which holds no replica";
          fail(os.str());
        }
        arrivals.push_back(t.to);
        break;
      }
      case EventKind::kRequest: {
        const RequestIndex i = ev.payload;
        const ServerId sv = seq.server(i);
        const bool by_cache = replicas[static_cast<std::size_t>(sv)] > 0;
        if (observer != nullptr) {
          observer->request_served(-1, i, sv, ev.at, by_cache,
                                   by_cache ? 0.0 : cm.lambda, alive);
        }
        if (by_cache) {
          ++rep.requests_served_by_cache;
        } else if (std::find(arrivals.begin(), arrivals.end(), sv) !=
                   arrivals.end()) {
          ++rep.requests_served_by_transfer;
        } else {
          std::ostringstream os;
          os << "request r_" << i << " at t=" << seq.time(i) << " on s" << sv + 1
             << " finds no replica and no arriving transfer";
          fail(os.str());
        }
        break;
      }
    }
  }

  rep.measured_total_cost = rep.measured_caching_cost + rep.measured_transfer_cost;
  rep.mean_replicas = horizon > 0 ? occupancy_integral / horizon : 1.0;
  MCDC_INVARIANT(rep.measured_caching_cost >= -kEps &&
                     rep.measured_transfer_cost >= -kEps,
                 "replay booked negative cost (caching=%g, transfer=%g)",
                 rep.measured_caching_cost, rep.measured_transfer_cost);
  MCDC_INVARIANT(alive == 0, "replay left %zu intervals open past the horizon",
                 alive);
  return rep;
}

}  // namespace mcdc
