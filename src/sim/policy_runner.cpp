#include "sim/policy_runner.h"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace mcdc {

namespace {

class RunnerContext final : public ReplicaContext {
 public:
  RunnerContext(const RequestSequence& seq, const CostModel& cm,
                const PolicyRunOptions& options, PolicyRunResult& out)
      : seq_(seq), cm_(cm), options_(options), out_(out) {
    holds_.assign(static_cast<std::size_t>(seq.m()), false);
    birth_.assign(static_cast<std::size_t>(seq.m()), 0.0);
    holds_[static_cast<std::size_t>(seq.origin())] = true;
    copies_ = 1;
    out_.max_copies = 1;
  }

  // -- ReplicaContext --
  Time now() const override { return now_; }
  int num_servers() const override { return seq_.m(); }
  bool has_copy(ServerId s) const override {
    return holds_.at(static_cast<std::size_t>(s));
  }
  std::size_t copy_count() const override { return copies_; }
  std::vector<ServerId> holders() const override {
    std::vector<ServerId> out;
    for (ServerId s = 0; s < seq_.m(); ++s) {
      if (holds_[static_cast<std::size_t>(s)]) out.push_back(s);
    }
    return out;
  }

  void transfer(ServerId from, ServerId to) override {
    if (from < 0 || to < 0 || from >= seq_.m() || to >= seq_.m() || from == to) {
      violation("transfer with invalid endpoints");
      return;
    }
    if (!holds_[static_cast<std::size_t>(from)]) {
      violation("transfer from a server without a copy");
      return;
    }
    // Fault injection: each attempt fails independently and is retried
    // (and billed) until one succeeds.
    if (options_.transfer_failure_prob > 0.0) {
      while (options_.rng->bernoulli(options_.transfer_failure_prob)) {
        out_.transfer_cost += cm_.lambda;
        ++out_.failed_transfer_attempts;
      }
    }
    out_.schedule.add_transfer(from, to, now_);
    out_.transfer_cost += cm_.lambda;
    ++out_.transfers;
    transferred_to_now_ = to;
    if (!holds_[static_cast<std::size_t>(to)]) {
      holds_[static_cast<std::size_t>(to)] = true;
      birth_[static_cast<std::size_t>(to)] = now_;
      ++copies_;
      out_.max_copies = std::max(out_.max_copies, copies_);
    } else {
      violation("transfer to a server that already holds a copy");
    }
  }

  void drop(ServerId s) override {
    if (s < 0 || s >= seq_.m() || !holds_[static_cast<std::size_t>(s)]) {
      violation("drop on a server without a copy");
      return;
    }
    if (copies_ == 1) {
      violation("drop of the last copy");
      return;
    }
    close_copy(s, now_);
  }

  void wake_at(Time t) override {
    if (t < now_ - kEps) {
      violation("wake_at in the past");
      return;
    }
    wakes_.push(t);
  }

  // -- runner-side API --
  void advance_to(Time t) {
    integral_ += static_cast<double>(copies_) * (t - now_);
    out_.caching_cost += cm_.mu * static_cast<double>(copies_) * (t - now_);
    now_ = t;
    transferred_to_now_ = kNoServer;
  }

  bool has_pending_wake_before(Time t) const {
    return !wakes_.empty() && wakes_.top() < t - kEps;
  }
  bool has_pending_wake_at_or_before(Time t) const {
    return !wakes_.empty() && wakes_.top() <= t + kEps;
  }
  Time next_wake() const { return wakes_.top(); }
  void pop_wake() { wakes_.pop(); }

  ServerId transferred_to_now() const { return transferred_to_now_; }
  void clear_transfer_marker() { transferred_to_now_ = kNoServer; }

  void finish(Time horizon) {
    advance_to(horizon);
    for (ServerId s = 0; s < seq_.m(); ++s) {
      if (holds_[static_cast<std::size_t>(s)]) close_copy(s, horizon);
    }
  }

  void violation(const std::string& msg) {
    out_.feasible = false;
    std::ostringstream os;
    os << "t=" << now_ << ": " << msg;
    out_.violations.push_back(os.str());
  }

  double copy_time_integral() const { return integral_; }

 private:
  void close_copy(ServerId s, Time t) {
    out_.schedule.add_cache(s, birth_[static_cast<std::size_t>(s)], t);
    holds_[static_cast<std::size_t>(s)] = false;
    --copies_;
  }

  const RequestSequence& seq_;
  CostModel cm_;
  PolicyRunOptions options_;
  PolicyRunResult& out_;

  std::vector<bool> holds_;
  std::vector<Time> birth_;
  std::size_t copies_ = 0;
  Time now_ = 0.0;
  double integral_ = 0.0;
  ServerId transferred_to_now_ = kNoServer;
  std::priority_queue<Time, std::vector<Time>, std::greater<>> wakes_;
};

}  // namespace

PolicyRunResult run_policy(const RequestSequence& seq, const CostModel& cm,
                           OnlinePolicy& policy,
                           const PolicyRunOptions& options) {
  if (options.transfer_failure_prob > 0.0 &&
      (options.rng == nullptr || options.transfer_failure_prob >= 1.0)) {
    throw std::invalid_argument(
        "run_policy: failure injection needs an Rng and prob < 1");
  }
  PolicyRunResult out;
  out.policy_name = policy.name();
  RunnerContext ctx(seq, cm, options, out);

  policy.on_start(ctx);

  for (RequestIndex i = 1; i <= seq.n(); ++i) {
    const Time ti = seq.time(i);
    // Wake-ups strictly before the request fire first (expirations).
    while (ctx.has_pending_wake_before(ti)) {
      const Time tw = ctx.next_wake();
      ctx.pop_wake();
      ctx.advance_to(std::max(tw, ctx.now()));
      policy.on_wake(ctx);
    }

    ctx.advance_to(ti);
    const ServerId s = seq.server(i);
    const bool had_copy = ctx.has_copy(s);
    ctx.clear_transfer_marker();
    policy.on_request(ctx, s, i);
    const bool served = had_copy || ctx.has_copy(s) || ctx.transferred_to_now() == s;
    if (!served) {
      ctx.violation("request r_" + std::to_string(i) + " not served");
    }
    if (had_copy) {
      ++out.hits;
    } else {
      ++out.misses;
    }

    // Wake-ups that landed exactly at the request time run after it.
    while (ctx.has_pending_wake_at_or_before(ctx.now())) {
      ctx.pop_wake();
      policy.on_wake(ctx);
    }
  }

  const Time horizon = seq.time(seq.n());
  // Deliver remaining wake-ups up to the horizon (deletions before t_n
  // still change cost), then truncate.
  while (ctx.has_pending_wake_at_or_before(horizon)) {
    const Time tw = ctx.next_wake();
    ctx.pop_wake();
    ctx.advance_to(std::max(tw, ctx.now()));
    policy.on_wake(ctx);
  }
  ctx.finish(horizon);

  out.schedule.normalize();
  out.total_cost = out.caching_cost + out.transfer_cost;
  out.mean_copies =
      horizon > 0 ? ctx.copy_time_integral() / horizon : static_cast<double>(1);
  return out;
}

}  // namespace mcdc
