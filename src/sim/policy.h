// Online replica-management policy interface for the discrete-event
// simulator.
//
// A policy reacts to requests (and to self-scheduled wake-ups) by moving
// and dropping copies through the ReplicaContext. The simulator owns the
// clock, meters costs, enforces the problem invariants (a request must find
// a copy on its server; at least one copy must always exist), and builds a
// replayable Schedule. This gives every online strategy — the paper's SC
// and all comparison baselines — one measured, validated execution path.
#pragma once

#include <string>
#include <vector>

#include "model/request.h"
#include "util/types.h"

namespace mcdc {

class ReplicaContext {
 public:
  virtual ~ReplicaContext() = default;

  virtual Time now() const = 0;
  virtual int num_servers() const = 0;
  virtual bool has_copy(ServerId s) const = 0;
  virtual std::size_t copy_count() const = 0;
  virtual std::vector<ServerId> holders() const = 0;

  /// Replicate from `from` (must hold a copy) to `to` at the current time;
  /// costs lambda. No-op cost still applies if `to` already holds a copy
  /// (policies should not do that; the simulator flags it as a violation).
  virtual void transfer(ServerId from, ServerId to) = 0;

  /// Delete the copy on s at the current time. Dropping the last copy is a
  /// violation (the problem requires one copy at all times).
  virtual void drop(ServerId s) = 0;

  /// Request an on_wake callback at absolute time t (>= now).
  virtual void wake_at(Time t) = 0;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  virtual std::string name() const = 0;

  /// Called once at t = 0 with the initial copy on the origin in place.
  virtual void on_start(ReplicaContext& ctx) { (void)ctx; }

  /// Called at each request time. On return the request's server must hold
  /// a copy, or must have been the target of a transfer at this instant
  /// (transfer-and-drop service is legal: transfer then drop).
  virtual void on_request(ReplicaContext& ctx, ServerId server,
                          RequestIndex index) = 0;

  /// Called for wake-ups scheduled via wake_at.
  virtual void on_wake(ReplicaContext& ctx) { (void)ctx; }
};

}  // namespace mcdc
