// Prediction-augmented Speculative Caching (extension).
//
// The paper motivates off-line optimality with the predictability of
// mobile trajectories ("93% of human behaviour"); modern online algorithm
// theory formalizes that as *algorithms with predictions*. This policy
// consumes, at each use of a copy, a prediction of the next-use gap on
// that server and decides:
//
//   predicted gap <= delta_t  ->  keep the copy the full window (as SC),
//   predicted gap  > delta_t  ->  drop immediately after use.
//
// Consistency: with perfect predictions it never pays for a wasted
// speculative window (saving up to lambda per drop). Robustness: a wrong
// "drop" costs one extra transfer lambda where SC would have paid the
// wasted window lambda anyway, so the policy stays within the same
// constant-factor envelope; bench_predictions measures the
// consistency-robustness trade-off as prediction noise grows.
//
// Predictions are supplied by a NextUseOracle; for experiments we build
// one from the true sequence with controllable error (perfect, noisy,
// adversarially wrong).
#pragma once

#include <functional>

#include "model/cost_model.h"
#include "model/request.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace mcdc {

/// Returns the predicted gap until the next request on `server`, given the
/// current request index and time. +infinity means "no further request".
using NextUseOracle = std::function<Time(ServerId server, RequestIndex index,
                                         Time now)>;

/// Oracle built from the ground-truth sequence with multiplicative
/// log-normal-ish noise: predicted = actual * exp(noise * N(0,1)).
/// noise = 0 is a perfect oracle.
NextUseOracle make_sequence_oracle(const RequestSequence& seq, double noise,
                                   Rng& rng);

/// Oracle that predicts the opposite of the truth relative to the window
/// (worst case for the trusting policy).
NextUseOracle make_adversarial_oracle(const RequestSequence& seq, Time delta_t);

class PredictiveScPolicy final : public OnlinePolicy {
 public:
  PredictiveScPolicy(const CostModel& cm, ServerId origin, NextUseOracle oracle);

  std::string name() const override { return "predictive-sc"; }
  void on_start(ReplicaContext& ctx) override;
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;
  void on_wake(ReplicaContext& ctx) override;

 private:
  void place_window(ReplicaContext& ctx, ServerId s, RequestIndex index);

  Time delta_t_;
  NextUseOracle oracle_;
  ServerId last_request_server_;
  std::vector<Time> expiry_;
  std::vector<std::uint64_t> ordinal_;
  std::uint64_t counter_ = 0;
};

}  // namespace mcdc
