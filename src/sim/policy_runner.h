// Discrete-event execution of an OnlinePolicy over a request sequence.
//
// The runner owns the event loop (requests in time order, interleaved with
// policy wake-ups), meters caching cost continuously (mu * copies * dt) and
// transfer cost per edge, verifies the serving and at-least-one-copy
// invariants, and emits a replayable Schedule. It is deliberately an
// independent accounting path from core/online_sc.cpp: tests require both
// to agree on the SC policy to the last epsilon.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/request.h"
#include "model/schedule.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace mcdc {

/// Fault injection and other execution knobs.
struct PolicyRunOptions {
  /// Probability that a single transfer attempt fails; failed attempts are
  /// retried (and billed lambda each) until one succeeds — an unreliable
  /// network model. 0 disables injection.
  double transfer_failure_prob = 0.0;
  /// Required when transfer_failure_prob > 0.
  Rng* rng = nullptr;
};

struct PolicyRunResult {
  std::string policy_name;
  Cost total_cost = 0.0;
  Cost caching_cost = 0.0;
  Cost transfer_cost = 0.0;
  std::size_t transfers = 0;
  std::size_t failed_transfer_attempts = 0;  ///< injected failures (retried)
  std::size_t hits = 0;    ///< requests that found a local copy already there
  std::size_t misses = 0;
  std::size_t max_copies = 0;
  double mean_copies = 0.0;  ///< time-averaged replica count
  Schedule schedule;
  bool feasible = true;
  std::vector<std::string> violations;
};

/// Run `policy` over `seq` under `cm`. The clock starts at t_0 = 0 with the
/// initial copy on seq.origin() and stops at t_n (copies truncate there).
PolicyRunResult run_policy(const RequestSequence& seq, const CostModel& cm,
                           OnlinePolicy& policy,
                           const PolicyRunOptions& options = {});

}  // namespace mcdc
