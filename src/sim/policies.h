// Online replica-management policies for the simulator.
//
//  * ScSimPolicy        — the paper's Speculative Caching, re-implemented
//                         on top of the generic policy API. Intentionally a
//                         second, independent implementation: tests require
//                         cost equality with core/online_sc.cpp.
//  * AlwaysMigratePolicy— one copy that follows the request stream
//                         (transfer on every server change, never replicate).
//  * StaticHomePolicy   — the copy never leaves the origin; remote requests
//                         are served by transfer-and-discard.
//  * FullReplicationPolicy — replicate on first touch, never delete.
//  * LruKPolicy         — capacity-driven baseline: at most k replicas,
//                         least-recently-used eviction (classic caching
//                         transplanted into the cloud cost model; Table I's
//                         left column).
//  * RandomizedSkiRentalPolicy — SC with the classical randomized ski-rental
//                         window distribution (density e^x/(e-1) on [0,1],
//                         scaled by delta_t) instead of the fixed window.
//  * TunableScPolicy    — SC whose speculation window and epoch length are
//                         retuned per monitoring interval by a pluggable
//                         WindowController (the scenario lab's adaptive
//                         policies run through the existing policy_runner
//                         via this adapter; see docs/SCENLAB.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/cost_model.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace mcdc {

class ScSimPolicy final : public OnlinePolicy {
 public:
  ScSimPolicy(const CostModel& cm, ServerId origin,
              std::size_t epoch_transfers = static_cast<std::size_t>(-1),
              double speculation_factor = 1.0);

  std::string name() const override { return "sc"; }
  void on_start(ReplicaContext& ctx) override;
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;
  void on_wake(ReplicaContext& ctx) override;

 private:
  void refresh(ReplicaContext& ctx, ServerId s);

  Time delta_t_;
  std::size_t epoch_limit_;
  std::size_t epoch_transfers_ = 0;
  ServerId last_request_server_;
  std::vector<Time> expiry_;
  std::vector<std::uint64_t> ordinal_;
  std::uint64_t counter_ = 0;
};

class AlwaysMigratePolicy final : public OnlinePolicy {
 public:
  explicit AlwaysMigratePolicy(ServerId origin) : holder_(origin) {}
  std::string name() const override { return "always-migrate"; }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  ServerId holder_;
};

class StaticHomePolicy final : public OnlinePolicy {
 public:
  explicit StaticHomePolicy(ServerId origin) : home_(origin) {}
  std::string name() const override { return "static-home"; }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  ServerId home_;
};

class FullReplicationPolicy final : public OnlinePolicy {
 public:
  explicit FullReplicationPolicy(ServerId origin) : last_(origin) {}
  std::string name() const override { return "full-replication"; }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  ServerId last_;
};

class LruKPolicy final : public OnlinePolicy {
 public:
  LruKPolicy(int num_servers, ServerId origin, std::size_t capacity);
  std::string name() const override { return "lru-" + std::to_string(capacity_); }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  std::size_t capacity_;
  ServerId last_;
  std::vector<std::uint64_t> last_use_;
  std::uint64_t counter_ = 0;
};

/// What a WindowController observes over one monitoring interval. All
/// counters cover the interval just ended, not the whole run.
struct WindowIntervalStats {
  Time interval = 0.0;          ///< interval length in simulated time
  std::size_t requests = 0;
  std::size_t hits = 0;         ///< requests that found a local copy
  std::size_t misses = 0;       ///< requests served by a transfer
  std::size_t expirations = 0;  ///< copies that expired unused
  std::size_t slo_missed = 0;   ///< network-time world only; 0 otherwise
  /// Distinct (item, server) pairs that received requests this interval —
  /// the denominator for the per-pair arrival-rate estimate lambda-hat.
  std::size_t active_pairs = 0;
};

/// A controller's retuning decision, applied to all subsequent holds.
struct WindowDecision {
  /// New speculation factor: delta_t = factor * lambda / mu.
  double factor = 1.0;
  /// New epoch length in transfers (0 = no epoch resets).
  std::size_t epoch_transfers = 0;
};

/// Measure-then-adapt hook: called once per monitoring interval with the
/// observed hit/transfer/expiry mix; returns the window/epoch retuning.
/// Implementations live above sim/ (scenlab::AdaptiveController); sim only
/// defines the contract so both the instantaneous policy_runner world and
/// the scenlab network-time world can drive the same controller.
class WindowController {
 public:
  virtual ~WindowController() = default;
  virtual WindowDecision on_interval(const WindowIntervalStats& stats,
                                     const WindowDecision& current) = 0;
  /// Called at the start of each run so one controller can serve many
  /// per-item policy instances in sequence.
  virtual void reset() {}
};

/// SC with a runtime-tunable window: behaves exactly like ScSimPolicy at
/// the current (factor, epoch) setting, and polls `controller` every
/// `interval` of simulated time via self-scheduled wake-ups. A null
/// controller makes it a static SC at the initial decision (tested to be
/// cost-identical to ScSimPolicy).
class TunableScPolicy final : public OnlinePolicy {
 public:
  TunableScPolicy(const CostModel& cm, ServerId origin, Time interval,
                  WindowController* controller,
                  WindowDecision initial = {});

  std::string name() const override {
    return controller_ == nullptr ? "sc-tunable" : "sc-adaptive";
  }
  void on_start(ReplicaContext& ctx) override;
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;
  void on_wake(ReplicaContext& ctx) override;

  double current_factor() const { return decision_.factor; }
  std::size_t current_epoch() const { return decision_.epoch_transfers; }

 private:
  Time window() const { return decision_.factor * delta_base_; }
  void refresh(ReplicaContext& ctx, ServerId s);
  void monitor_tick(ReplicaContext& ctx);

  Time delta_base_;  ///< lambda / mu
  Time interval_;
  WindowController* controller_;
  WindowDecision decision_;
  Time next_monitor_ = 0.0;
  std::size_t epoch_transfers_ = 0;
  ServerId last_request_server_;
  std::vector<Time> expiry_;
  std::vector<std::uint64_t> ordinal_;
  std::uint64_t counter_ = 0;

  WindowIntervalStats tick_;  ///< accumulates over the current interval
  std::vector<std::uint64_t> pair_mark_;  ///< active_pairs dedup per interval
  std::uint64_t tick_id_ = 0;
};

class RandomizedSkiRentalPolicy final : public OnlinePolicy {
 public:
  RandomizedSkiRentalPolicy(const CostModel& cm, ServerId origin, Rng& rng);
  std::string name() const override { return "rand-ski"; }
  void on_start(ReplicaContext& ctx) override;
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;
  void on_wake(ReplicaContext& ctx) override;

 private:
  double sample_window();
  void refresh(ReplicaContext& ctx, ServerId s);

  Time delta_t_;
  Rng* rng_;
  ServerId last_request_server_;
  std::vector<Time> expiry_;
  std::vector<Time> window_;
  std::vector<std::uint64_t> ordinal_;
  std::uint64_t counter_ = 0;
};

}  // namespace mcdc
