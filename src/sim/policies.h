// Online replica-management policies for the simulator.
//
//  * ScSimPolicy        — the paper's Speculative Caching, re-implemented
//                         on top of the generic policy API. Intentionally a
//                         second, independent implementation: tests require
//                         cost equality with core/online_sc.cpp.
//  * AlwaysMigratePolicy— one copy that follows the request stream
//                         (transfer on every server change, never replicate).
//  * StaticHomePolicy   — the copy never leaves the origin; remote requests
//                         are served by transfer-and-discard.
//  * FullReplicationPolicy — replicate on first touch, never delete.
//  * LruKPolicy         — capacity-driven baseline: at most k replicas,
//                         least-recently-used eviction (classic caching
//                         transplanted into the cloud cost model; Table I's
//                         left column).
//  * RandomizedSkiRentalPolicy — SC with the classical randomized ski-rental
//                         window distribution (density e^x/(e-1) on [0,1],
//                         scaled by delta_t) instead of the fixed window.
#pragma once

#include <vector>

#include "model/cost_model.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace mcdc {

class ScSimPolicy final : public OnlinePolicy {
 public:
  ScSimPolicy(const CostModel& cm, ServerId origin,
              std::size_t epoch_transfers = static_cast<std::size_t>(-1),
              double speculation_factor = 1.0);

  std::string name() const override { return "sc"; }
  void on_start(ReplicaContext& ctx) override;
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;
  void on_wake(ReplicaContext& ctx) override;

 private:
  void refresh(ReplicaContext& ctx, ServerId s);

  Time delta_t_;
  std::size_t epoch_limit_;
  std::size_t epoch_transfers_ = 0;
  ServerId last_request_server_;
  std::vector<Time> expiry_;
  std::vector<std::uint64_t> ordinal_;
  std::uint64_t counter_ = 0;
};

class AlwaysMigratePolicy final : public OnlinePolicy {
 public:
  explicit AlwaysMigratePolicy(ServerId origin) : holder_(origin) {}
  std::string name() const override { return "always-migrate"; }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  ServerId holder_;
};

class StaticHomePolicy final : public OnlinePolicy {
 public:
  explicit StaticHomePolicy(ServerId origin) : home_(origin) {}
  std::string name() const override { return "static-home"; }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  ServerId home_;
};

class FullReplicationPolicy final : public OnlinePolicy {
 public:
  explicit FullReplicationPolicy(ServerId origin) : last_(origin) {}
  std::string name() const override { return "full-replication"; }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  ServerId last_;
};

class LruKPolicy final : public OnlinePolicy {
 public:
  LruKPolicy(int num_servers, ServerId origin, std::size_t capacity);
  std::string name() const override { return "lru-" + std::to_string(capacity_); }
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;

 private:
  std::size_t capacity_;
  ServerId last_;
  std::vector<std::uint64_t> last_use_;
  std::uint64_t counter_ = 0;
};

class RandomizedSkiRentalPolicy final : public OnlinePolicy {
 public:
  RandomizedSkiRentalPolicy(const CostModel& cm, ServerId origin, Rng& rng);
  std::string name() const override { return "rand-ski"; }
  void on_start(ReplicaContext& ctx) override;
  void on_request(ReplicaContext& ctx, ServerId server, RequestIndex index) override;
  void on_wake(ReplicaContext& ctx) override;

 private:
  double sample_window();
  void refresh(ReplicaContext& ctx, ServerId s);

  Time delta_t_;
  Rng* rng_;
  ServerId last_request_server_;
  std::vector<Time> expiry_;
  std::vector<Time> window_;
  std::vector<std::uint64_t> ordinal_;
  std::uint64_t counter_ = 0;
};

}  // namespace mcdc
