// Fixture: the deterministic merge/compare path touching a telemetry
// stamp field (the stamp-blind rule). Mirrors engine/ingress.h's
// IngressRecord in miniature.
#include "util/annotate.h"

#include <cstdint>

namespace fixture {

struct IngressRecord {
  double time = 0.0;
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
  std::uint64_t submit_ns = 0;  ///< telemetry stamp — merge must be blind
};

bool tie_break(const IngressRecord& a, const IngressRecord& b) {
  if (a.producer != b.producer) return a.producer < b.producer;
  return a.submit_ns < b.submit_ns;  // VIOLATION(stamp)
}

MCDC_DETERMINISTIC
bool merge_precedes(const IngressRecord& a, const IngressRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  return tie_break(a, b);
}

// Unannotated telemetry code may read the stamp freely.
std::uint64_t queue_wait(const IngressRecord& r, std::uint64_t deq_ns) {
  return deq_ns - r.submit_ns;
}

}  // namespace fixture
