// Fixture stub: stands in for a real engine header.
#pragma once

namespace fixture::engine {
inline int stub() { return 1; }
}  // namespace fixture::engine
