// Fixture: the obs module must never depend on the engine (the
// observability layer is below the serving layers in the include DAG).
#pragma once

#include "engine/shard_stub.h"  // VIOLATION(layering)
#include "util/helper_stub.h"

namespace fixture::obs {
inline int probe() { return fixture::engine::stub() + fixture::util::stub(); }
}  // namespace fixture::obs
