// Fixture stub: util is importable from everywhere (and imports nothing).
#pragma once

namespace fixture::util {
inline int stub() { return 2; }
}  // namespace fixture::util
