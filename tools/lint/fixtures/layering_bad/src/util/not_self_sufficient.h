#pragma once  // VIOLATION(layering) — header is not self-sufficient (std::vector without <vector>)

namespace fixture::util {
inline int first_of(const std::vector<int>& v) { return v.empty() ? 0 : v[0]; }
}  // namespace fixture::util
