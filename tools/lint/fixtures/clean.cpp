// Fixture: known-benign patterns that must produce ZERO violations.
// Guards the linter against over-flagging (a lint that cries wolf gets
// MCDC_CHECK_SKIP'd, which is how lints rot).
#include "util/annotate.h"

#include <cstdint>
#include <new>
#include <stdexcept>
#include <vector>

namespace fixture_clean {

struct Pod {
  int v = 0;
};

inline void contract_fail_stub(const char*) {}

#define FIXTURE_ASSERT(cond, msg) \
  do {                            \
    if (!(cond)) contract_fail_stub(msg); \
  } while (false)

std::vector<int> warm;

// Placement new constructs in pre-owned storage: not an allocation.
MCDC_NO_ALLOC
Pod* construct_in_place(void* storage) {
  Pod* p = ::new (storage) Pod();
  return p;
}

// Throw expressions are error paths, not steady-state: the std::string
// the exception constructor builds must not be flagged.
MCDC_NO_ALLOC
int checked_divide(int a, int b) {
  if (b == 0) {
    throw std::invalid_argument("fixture: division by zero");
  }
  return a / b;
}

// Statement-level escapes silence exactly the named rule on that line.
MCDC_NO_ALLOC
void recording_path(bool full) {
  if (full) {
    warm.push_back(1);  // mcdc-lint: allow(alloc) kFull recording only
  }
}

// Unannotated code allocates freely without a peep from the linter.
void cold_setup() {
  warm.reserve(4096);
  auto* block = new Pod[8];
  delete[] block;
}

}  // namespace fixture_clean
