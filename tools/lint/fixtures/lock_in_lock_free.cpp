// Fixture: a MCDC_LOCK_FREE root reaching a mutex and a blocking wait.
#include "util/annotate.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex mu;
int counter = 0;

void guarded_bump() {
  const std::lock_guard<std::mutex> lock(mu);  // VIOLATION(lock)
  ++counter;
}

MCDC_LOCK_FREE
void record_sample() {
  guarded_bump();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // VIOLATION(lock)
}

// Not annotated: locking here is fine and must not be flagged.
void cold_flush() {
  const std::lock_guard<std::mutex> lock(mu);
  counter = 0;
}

}  // namespace fixture
