// Fixture: determinism hygiene — clocks, rand, address-as-key, and
// unordered iteration inside a MCDC_DETERMINISTIC region.
#include "util/annotate.h"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

std::uint64_t jitter_source() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());  // VIOLATION(det)
}

MCDC_DETERMINISTIC
std::uint64_t merge_key(int item) {
  std::uint64_t k = jitter_source();
  k ^= static_cast<std::uint64_t>(std::rand());  // VIOLATION(det)
  std::unordered_map<int, int> order;  // VIOLATION(det)
  order[item] = 1;
  const int* p = &item;
  k ^= reinterpret_cast<std::uintptr_t>(p);  // VIOLATION(det)
  return k;
}

// Unannotated code may read clocks (telemetry does, by design).
std::uint64_t telemetry_stamp() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fixture
