// Fixture: a MCDC_NO_ALLOC root reaching an allocation two calls deep.
#include "util/annotate.h"

#include <cstdlib>
#include <vector>

namespace fixture {

std::vector<int> sink;

void helper_leaf() {
  sink.push_back(1);  // VIOLATION(alloc)
}

void helper_mid() { helper_leaf(); }

MCDC_NO_ALLOC
int hot_serve(int x) {
  helper_mid();
  int* p = new int(x);  // VIOLATION(alloc)
  int r = *p;
  delete p;
  void* q = std::malloc(16);  // VIOLATION(alloc)
  std::free(q);
  return r;
}

// An MCDC_ALLOC_OK callee is a sanctioned cold path: reachable
// allocations inside it must NOT be flagged.
MCDC_ALLOC_OK("fixture: amortized growth")
void cold_grow() { sink.reserve(1024); }

MCDC_NO_ALLOC
int hot_with_escape() {
  cold_grow();
  return 0;
}

}  // namespace fixture
