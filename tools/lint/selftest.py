#!/usr/bin/env python3
"""Self-test for mcdc_lint.py (ctest: lint_selftest).

Three claims, in order of importance:

 1. NEGATIVE: every `// VIOLATION(<rule>)` marker in tools/lint/fixtures/
    is reported by the linter with the matching rule at the marked
    file:line — a lint that silently stops flagging a rule fails here.
 2. PRECISE: the fixture run reports nothing that is not marked
    (clean.cpp packs the benign patterns: placement new, throw paths,
    contract macros, MCDC_ALLOC_OK callees, allow() comments).
 3. CLEAN + ANNOTATED: the real tree lints clean, and every annotation
    class has at least one root (so the annotations cannot rot away).

Exits 0 on success, 1 on failure. Needs only python3; the linter picks
libclang when importable and falls back to its text frontend otherwise.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.realpath(os.path.join(HERE, "..", ".."))
LINT = os.path.join(HERE, "mcdc_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

MARKER_RE = re.compile(r"VIOLATION\((\w+)\)")

failures = []


def check(cond, msg):
    if not cond:
        failures.append(msg)
        print(f"FAIL: {msg}")
    return cond


def run_lint(args):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        report_path = tf.name
    try:
        proc = subprocess.run(
            [sys.executable, LINT, "--report", report_path] + args,
            capture_output=True, text=True, cwd=ROOT, timeout=600)
        with open(report_path) as f:
            report = json.load(f)
    finally:
        os.unlink(report_path)
    return proc, report


def collect_markers(base):
    """(relpath, line, rule) for every VIOLATION marker under base."""
    out = []
    for dirpath, _, names in os.walk(base):
        for fname in sorted(names):
            if not fname.endswith((".h", ".hpp", ".cpp", ".cc")):
                continue
            p = os.path.join(dirpath, fname)
            rel = os.path.relpath(p, ROOT)
            with open(p, encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    for m in MARKER_RE.finditer(line):
                        out.append((rel, lineno, m.group(1)))
    return out


def match_violations(markers, violations, context):
    reported = {(v["file"], v["line"], v["rule"]) for v in violations}
    for rel, line, rule in markers:
        check((rel, line, rule) in reported,
              f"{context}: expected [{rule}] at {rel}:{line}, linter "
              f"reported only: {sorted(reported) or 'nothing'}")
    marked = {(rel, line) for rel, line, _ in markers}
    for v in violations:
        check((v["file"], v["line"]) in marked,
              f"{context}: unexpected finding [{v['rule']}] at "
              f"{v['file']}:{v['line']}: {v['message']}")


def main():
    # ---- 1+2: fixture run (function rules; module-less layout) ----------
    proc, report = run_lint(
        ["--src", "tools/lint/fixtures", "--no-headers"])
    print(f"[fixtures] frontend={report['frontend']} "
          f"functions={report['functions']} rules={report['rules']}")
    check(proc.returncode == 1,
          f"fixture run must exit 1 (violations), got {proc.returncode}\n"
          f"{proc.stdout}{proc.stderr}")
    fixture_markers = [
        m for m in collect_markers(FIXTURES)
        if not m[0].startswith(
            os.path.relpath(os.path.join(FIXTURES, "layering_bad"), ROOT))
    ]
    check(len(fixture_markers) >= 8,
          f"marker scan looks broken: only {len(fixture_markers)} markers")
    match_violations(fixture_markers, report["violations"], "fixtures")
    for rule in ("alloc", "lock", "stamp", "det"):
        check(report["rules"][rule] > 0,
              f"fixture run flagged nothing for rule '{rule}'")

    # ---- 1+2: layering fixture (its own miniature src root) -------------
    proc, report = run_lint(
        ["--src", "tools/lint/fixtures/layering_bad/src"])
    print(f"[layering] headers_probed={report['headers_probed']} "
          f"rules={report['rules']}")
    check(proc.returncode == 1,
          f"layering run must exit 1, got {proc.returncode}\n"
          f"{proc.stdout}{proc.stderr}")
    lay_markers = collect_markers(os.path.join(FIXTURES, "layering_bad"))
    if not report["headers_probed"]:
        # No C++ compiler: the self-sufficiency probe (and its marker)
        # is out of scope for this environment.
        lay_markers = [m for m in lay_markers
                       if "not_self_sufficient" not in m[0]]
    match_violations(lay_markers, report["violations"], "layering")
    check(report["rules"]["layering"] > 0, "layering rule flagged nothing")

    # ---- 3: the real tree must lint clean, with live annotations --------
    proc, report = run_lint(["--require-roots"])
    print(f"[tree] frontend={report['frontend']} "
          f"files={report['files_scanned']} "
          f"functions={report['functions']} rules={report['rules']}")
    check(proc.returncode == 0,
          f"real tree must lint clean, got exit {proc.returncode}:\n"
          f"{proc.stdout}{proc.stderr}")
    roots = report["annotation_roots"]
    # lock_free = 7 pins the SPSC ring trio (try_push / try_push_span /
    # consume_all) plus credit_throttle alongside the three obs rings:
    # deleting a ring annotation fails this gate, per the ingest-fast-path
    # contract. no_alloc/hot_path floors track the same hot entry points.
    for tag, floor in (("no_alloc", 9), ("lock_free", 7),
                       ("deterministic", 6), ("hot_path", 9),
                       ("alloc_ok", 2)):
        check(len(roots.get(tag, [])) >= floor,
              f"expected >= {floor} {tag} annotations in the tree, found "
              f"{len(roots.get(tag, []))}: {roots.get(tag)}")

    if failures:
        print(f"\nlint_selftest: {len(failures)} failure(s)")
        return 1
    print("\nlint_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
