#!/usr/bin/env python3
"""mcdc-lint: project-specific static analysis proving the standing invariants.

The repo's dynamic gates (counting-operator-new tests, TSan lanes, fuzz
bit-identity) prove one execution each; this tool proves the same claims
over every call path, at review time. It builds a per-translation-unit
call graph and enforces five rules rooted at the `src/util/annotate.h`
source annotations:

  alloc     no operator new / malloc / allocating container call is
            reachable (transitively) from a MCDC_NO_ALLOC function.
            MCDC_ALLOC_OK(why) exempts a callee (cold or amortized paths).
  lock      no mutex / condition_variable / blocking wait is reachable
            from a MCDC_LOCK_FREE function.
  stamp     the telemetry stamp fields of IngressRecord (submit_ns) are
            never touched by code reachable from the deterministic
            merge/compare path (MCDC_DETERMINISTIC roots) — the static
            form of the engine's stamp-blind bit-identity contract.
  det       no rand / clock read / address-as-key cast / unordered
            container inside MCDC_DETERMINISTIC regions.
  layering  the module include DAG stays acyclic and explicit (util
            imports nothing, obs never imports engine, core/model never
            import service/engine, ...), and every header compiles
            standalone (self-sufficiency probe, needs a C++ compiler).

Statement-level escape: append `// mcdc-lint: allow(<rule>[, <rule>...]) why`
to the offending line. Function-level escape (alloc only): MCDC_ALLOC_OK.

Frontends:
  clang     libclang (python `clang.cindex`) over compile_commands.json —
            precise call resolution and attribute binding.
  text      a token-level C++ scanner built into this file — no
            dependencies beyond python3; annotation macros are matched
            textually. Call resolution is by name (over-approximate).
  auto      clang when importable and working, else text. Never fails
            just because libclang is missing.

Exit status: 0 clean, 1 violations, 2 usage/environment error. The
machine-readable report (--report) is written in every case.

Self-tests: tools/lint/selftest.py (ctest: lint_selftest) runs this tool
over seeded-violation fixtures and over the real tree; see
docs/STATIC_ANALYSIS.md ("mcdc-lint").
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Project configuration (the "project-specific" half of the analyzer).
# --------------------------------------------------------------------------

ANNOTATION_TAGS = {
    "MCDC_NO_ALLOC": "no_alloc",
    "MCDC_LOCK_FREE": "lock_free",
    "MCDC_DETERMINISTIC": "deterministic",
    "MCDC_HOT_PATH": "hot_path",
    "MCDC_ALLOC_OK": "alloc_ok",
}
# clang annotate-attribute spellings (the macro expansions).
ATTR_TAGS = {
    "mcdc::no_alloc": "no_alloc",
    "mcdc::lock_free": "lock_free",
    "mcdc::deterministic": "deterministic",
    "mcdc::hot_path": "hot_path",
    "mcdc::alloc_ok": "alloc_ok",
}

# Telemetry stamp fields that the deterministic merge must never touch.
STAMP_FIELDS = ("submit_ns",)

# Project functions that ARE clocks no matter how they resolve.
KNOWN_CLOCK_FUNCTIONS = ("telemetry_now_ns",)

# Module include DAG for src/: module -> modules it may include (itself is
# always allowed). This is the *current* dependency set, codified —
# growing an edge is a deliberate one-line change here, reviewed with the
# code that needs it. The named invariants (util -> nothing, obs never ->
# engine, core/model never -> service/engine) are consequences of the map.
LAYERING = {
    "util": set(),
    "model": {"util"},
    "obs": {"util"},
    "paging": {"util"},
    "workload": {"model", "util"},
    "core": {"model", "obs", "util"},
    "sim": {"model", "obs", "util"},
    "analysis": {"core", "model", "util"},
    "baselines": {"core", "model", "util"},
    "service": {"core", "model", "obs", "util", "workload"},
    "engine": {"core", "model", "obs", "service", "util"},
    "scenlab": {"baselines", "core", "model", "obs", "sim", "util",
                "workload"},
    # src/mcdc.h (the umbrella header) lives at the src root.
    "": {"analysis", "baselines", "core", "engine", "model", "obs",
         "paging", "scenlab", "service", "sim", "util", "workload"},
}

RULES = ("alloc", "lock", "stamp", "det", "layering")

# --------------------------------------------------------------------------
# Shared IR
# --------------------------------------------------------------------------


@dataclass
class Fact:
    kind: str  # alloc | lock | det | stamp
    file: str
    line: int
    detail: str


@dataclass
class Func:
    name: str  # qualified, e.g. EngineShard::process_record
    bare: str
    file: str
    line: int
    annotations: set = field(default_factory=set)
    calls: list = field(default_factory=list)  # (name, file, line)
    facts: list = field(default_factory=list)


@dataclass
class Violation:
    rule: str
    file: str
    line: int
    function: str
    message: str
    path: list

    def render(self) -> str:
        s = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if self.path:
            s += f"\n    via {' -> '.join(self.path)}"
        return s


# --------------------------------------------------------------------------
# Lexical preprocessing shared by both frontends
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(r"mcdc-lint:\s*allow\(([a-z,\s]+)\)", re.IGNORECASE)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def strip_comments_and_strings(text: str):
    """Blank comments, string and char literals (newlines preserved).

    Returns (clean_text, allows) where allows maps line -> set of rule
    names escaped by a `// mcdc-lint: allow(...)` comment on that line.
    """
    out = list(text)
    allows = {}
    i, n = 0, len(text)

    def blank(a: int, b: int):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            m = ALLOW_RE.search(text[i:j])
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                allows.setdefault(line_of(text, i), set()).update(rules)
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            m = ALLOW_RE.search(text[i:j])
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                allows.setdefault(line_of(text, i), set()).update(rules)
            blank(i, j + 2)
            i = j + 2
        elif c == '"':
            # Raw string?
            if re.match(r'R"', text[i - 1:i + 1]) and i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^(]*)\(', text[i - 1:i + 40])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    j = n - len(close) if j < 0 else j
                    blank(i - 1, j + len(close))
                    i = j + len(close)
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            blank(i, j + 1)
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            blank(i, j + 1)
            i = j + 1
        else:
            i += 1
    return "".join(out), allows


def blank_balanced_calls(text: str, names) -> str:
    """Blank `NAME ( ... )` with balanced parens for each NAME (contract
    macros and throw-side error paths are not steady-state code)."""
    out = list(text)
    for name in names:
        for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", text):
            depth, j = 1, m.end()
            while j < len(text) and depth:
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                j += 1
            for k in range(m.start(), j):
                if out[k] != "\n":
                    out[k] = " "
    return "".join(out)


def blank_throw_statements(text: str) -> str:
    """Blank `throw <expr> ;` — error paths abort the hot path, so the
    std::string an exception constructor builds is not steady-state."""
    out = list(text)
    for m in re.finditer(r"\bthrow\b", text):
        j = m.end()
        depth = 0
        while j < len(text):
            c = text[j]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
            elif c == ";" and depth <= 0:
                break
            j += 1
        for k in range(m.start(), j + 1):
            if out[k] != "\n":
                out[k] = " "
    return "".join(out)


CONTRACT_MACROS = ("MCDC_ASSERT", "MCDC_INVARIANT", "MCDC_UNREACHABLE",
                   "static_assert", "assert")

# --------------------------------------------------------------------------
# Fact extraction (shared: both frontends run it over function bodies)
# --------------------------------------------------------------------------

ALLOC_METHODS = ("push_back", "emplace_back", "append", "resize", "reserve",
                 "assign", "shrink_to_fit", "push_front", "emplace_front")

FACT_PATTERNS = [
    # --- alloc ---
    ("alloc", re.compile(r"\b(malloc|calloc|realloc|strdup|aligned_alloc|"
                         r"posix_memalign)\s*\("), "C allocator call"),
    ("alloc", re.compile(r"\bmake_unique\b|\bmake_shared\b"),
     "make_unique/make_shared"),
    ("alloc", re.compile(r"(?:\.|->)\s*(%s)\s*\(" % "|".join(ALLOC_METHODS)),
     "allocating container call"),
    ("alloc", re.compile(r"\bstd::to_string\s*\("), "std::to_string"),
    ("alloc", re.compile(r"\bstd::ostringstream\b|\bstd::stringstream\b"),
     "string stream"),
    # --- lock ---
    ("lock", re.compile(r"\bstd::(recursive_|shared_|timed_)?mutex\b"),
     "mutex"),
    ("lock", re.compile(r"\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "lock guard"),
    ("lock", re.compile(r"\bcondition_variable\b"), "condition variable"),
    ("lock", re.compile(r"(?:\.|->)\s*(wait|wait_for|wait_until|lock|try_lock|"
                        r"join)\s*\("), "blocking call"),
    ("lock", re.compile(r"\b(sleep_for|sleep_until|call_once)\b"),
     "blocking call"),
    ("lock", re.compile(r"\bstd::(future|promise|barrier|latch)\b"),
     "blocking primitive"),
    # --- det ---
    ("det", re.compile(r"\brandom_device\b|\bsrand\s*\(|\bstd::rand\s*\("),
     "randomness"),
    ("det", re.compile(r"\b(steady_clock|system_clock|high_resolution_clock)"
                       r"\b"), "clock"),
    ("det", re.compile(r"\b(gettimeofday|clock_gettime)\b"), "clock"),
    ("det", re.compile(r"\b(%s)\b" % "|".join(KNOWN_CLOCK_FUNCTIONS)),
     "telemetry clock"),
    ("det", re.compile(r"\bunordered_(map|set|multimap|multiset)\b"),
     "unordered container (iteration order is nondeterministic)"),
    ("det", re.compile(r"reinterpret_cast<\s*(std::)?u?intptr_t"),
     "address-as-key cast"),
    # --- stamp ---
    ("stamp", re.compile(r"(?:\.|->)\s*(%s)\b" % "|".join(STAMP_FIELDS)),
     "telemetry stamp field access"),
]

# `rand(` / `time(` / `clock()` are flagged only when they do not resolve
# to a project function (model/request.h has a time() accessor).
CALLLIKE_DET = [
    (re.compile(r"(?<![\w.:>])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(nullptr|NULL|0)?\s*\)"), "time()"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"), "clock()"),
]

CALL_RE = re.compile(r"(?<![\w.:>])([A-Za-z_][\w]*(?:::[\w~]+)*)\s*\(")

CALL_KEYWORDS = frozenset(
    "if for while switch return sizeof alignof alignas decltype noexcept "
    "catch throw new delete static_cast dynamic_cast reinterpret_cast "
    "const_cast typeid defined __attribute__ int char bool double float "
    "long short unsigned signed void auto".split())

# Trivial accessors whose name-based resolution would only add noise.
IGNORED_CALLS = frozenset(
    "size empty begin end front back data capacity c_str value get min max "
    "count load store exchange fetch_add fetch_sub compare_exchange_weak "
    "compare_exchange_strong move forward swap abs floor ceil sqrt".split())


def extract_facts(body: str, file: str, base_line: int):
    """Facts + outgoing calls from one (comment-stripped) function body.

    `base_line` is the file line of body offset 0.
    """
    body = blank_balanced_calls(body, CONTRACT_MACROS)
    body = blank_throw_statements(body)

    facts = []
    calls = []

    def bline(pos: int) -> int:
        return base_line + body.count("\n", 0, pos)

    for kind, rx, detail in FACT_PATTERNS:
        for m in rx.finditer(body):
            facts.append(Fact(kind, file, bline(m.start()), detail))

    # new-expressions: placement new does not allocate.
    for m in re.finditer(r"\bnew\b", body):
        rest = body[m.end():m.end() + 160].lstrip()
        if rest.startswith("("):
            inner = rest[1:rest.find(")")] if ")" in rest else rest[1:]
            if "nothrow" not in inner:
                continue  # placement new: constructs, never allocates
        facts.append(Fact("alloc", file, bline(m.start()), "new expression"))

    for m in CALL_RE.finditer(body):
        name = m.group(1)
        bare = name.rsplit("::", 1)[-1]
        if bare in CALL_KEYWORDS or bare in IGNORED_CALLS:
            continue
        calls.append((name, file, bline(m.start())))

    call_names = {c[0].rsplit("::", 1)[-1] for c in calls}
    for rx, detail in CALLLIKE_DET:
        for m in rx.finditer(body):
            facts.append(Fact("det?", file, bline(m.start()), detail))
    # det? facts are resolved against the project call graph later.
    _ = call_names
    return facts, calls


# --------------------------------------------------------------------------
# Text frontend: a token-level C++ function scanner
# --------------------------------------------------------------------------

SCOPE_KEYWORDS = frozenset(("class", "struct", "union", "enum", "namespace"))
REJECT_BEFORE_BRACE = frozenset({"do", "else", "try", "extern"} | SCOPE_KEYWORDS)
SIG_QUALIFIERS = frozenset(("const", "noexcept", "override", "final",
                            "mutable", "volatile", "try", "constexpr"))
CONTROL_KEYWORDS = frozenset(("if", "for", "while", "switch", "catch",
                              "return", "sizeof", "alignof", "decltype",
                              "noexcept", "new", "delete", "throw"))

IDENT_CHARS = re.compile(r"[\w~]")


def _match_back_paren(text: str, close: int) -> int:
    depth, j = 1, close - 1
    while j >= 0 and depth:
        if text[j] == ")":
            depth += 1
        elif text[j] == "(":
            depth -= 1
            if depth == 0:
                return j
        j -= 1
    return -1


def _match_back_brace(text: str, close: int) -> int:
    depth, j = 1, close - 1
    while j >= 0 and depth:
        if text[j] == "}":
            depth += 1
        elif text[j] == "{":
            depth -= 1
            if depth == 0:
                return j
        j -= 1
    return -1


def _read_ident_back(text: str, j: int):
    """Identifier (with :: / ~ / operator@) ending at j inclusive."""
    end = j
    while j >= 0 and (IDENT_CHARS.match(text[j]) or
                      (text[j] == ":" and j >= 1 and text[j - 1] == ":")):
        if text[j] == ":":
            j -= 2
        else:
            j -= 1
    name = text[j + 1:end + 1]
    if not name:
        # operator symbols: scan symbols back, then expect 'operator'.
        k = end
        while k >= 0 and text[k] in "=<>!+-*/%&|^[]~":
            k -= 1
        if k < end:
            m = re.search(r"operator\s*$", text[max(0, k - 9):k + 1])
            if m:
                return "operator" + text[k + 1:end + 1], max(0, k - 9) + m.start()
    return name, j + 1


def _find_signature(text: str, brace: int):
    """Walk backwards from a `{` to decide whether it opens a function
    definition. Returns (name, sig_open_paren_pos) or None."""
    j = brace - 1
    guard = 0
    while j >= 0 and guard < 80:
        guard += 1
        while j >= 0 and text[j].isspace():
            j -= 1
        if j < 0:
            return None
        c = text[j]
        if c == ")":
            op = _match_back_paren(text, j)
            if op <= 0:
                return None
            k = op - 1
            while k >= 0 and text[k].isspace():
                k -= 1
            name, start = _read_ident_back(text, k)
            if not name:
                return None
            bare = name.rsplit("::", 1)[-1].lstrip("~")
            if name in ("noexcept", "throw", "alignas", "decltype",
                        "__attribute__"):
                j = start - 1
                continue
            if bare in CONTROL_KEYWORDS or bare in SCOPE_KEYWORDS:
                return None
            # Constructor-init-list member `x_(v)`: keep walking left.
            p = start - 1
            while p >= 0 and text[p].isspace():
                p -= 1
            if p >= 0 and (text[p] == "," or
                           (text[p] == ":" and (p == 0 or text[p - 1] != ":"))):
                j = p - 1
                continue
            return name, op
        if c == "}":
            op = _match_back_brace(text, j)  # member init `x_{v}`
            if op <= 0:
                return None
            j = op - 1
            continue
        if c == ">":  # trailing return types unsupported (unused in repo)
            return None
        if IDENT_CHARS.match(c):
            name, start = _read_ident_back(text, j)
            if name in SIG_QUALIFIERS:
                j = start - 1
                continue
            if name in REJECT_BEFORE_BRACE:
                return None
            return None  # `int x {3}`, `namespace foo {`, labels, ...
        return None
    return None


def parse_text_file(path: str, rel: str):
    """All function definitions (qualified) in one file."""
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    clean, allows = strip_comments_and_strings(raw)

    funcs = []
    # Scope stack entries: (brace_depth_after_open, kind, name)
    stack = []
    depth = 0
    i, n = 0, len(clean)
    while i < n:
        c = clean[i]
        if c == "{":
            depth += 1
            sig = _find_signature(clean, i)
            if sig is not None:
                name, sig_open = sig
                # Close over the body.
                body_close = _find_match_fwd(clean, i)
                scope = "::".join(s[2] for s in stack
                                  if s[1] in ("class", "struct", "union")
                                  and s[2])
                qual = name if "::" in name or not scope \
                    else scope + "::" + name
                fn = Func(name=qual, bare=name.rsplit("::", 1)[-1],
                          file=rel, line=line_of(clean, sig_open))
                # Annotations: macro tokens in the window back to the
                # previous statement/scope boundary.
                wstart = max(clean.rfind(";", 0, sig_open),
                             clean.rfind("}", 0, sig_open),
                             clean.rfind("{", 0, sig_open), 0)
                window = clean[wstart:sig_open]
                for macro, tag in ANNOTATION_TAGS.items():
                    if re.search(r"\b%s\b" % macro, window):
                        fn.annotations.add(tag)
                body = clean[i + 1:body_close]
                fn.facts, fn.calls = extract_facts(
                    body, rel, line_of(clean, i + 1))
                # Apply line-level allows at extraction time.
                fn.facts = [
                    fa for fa in fn.facts
                    if fa.kind.rstrip("?") not in allows.get(fa.line, set())
                ]
                funcs.append(fn)
                # Recurse into the body for nested class methods? Bodies
                # contain only lambdas (attributed to the enclosing fn),
                # so skip ahead.
                i = body_close + 1
                depth -= 1
                continue
            kind, name = _scope_kind(clean, i)
            stack.append((depth, kind, name))
        elif c == "}":
            depth -= 1
            if stack and stack[-1][0] == depth + 1:
                stack.pop()
        i += 1
    return funcs, allows


def _find_match_fwd(text: str, open_pos: int) -> int:
    depth, j = 1, open_pos + 1
    n = len(text)
    while j < n and depth:
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
        j += 1
    return n - 1


def _scope_kind(text: str, brace: int):
    """Classify a non-function `{`: class/struct/namespace name, or block."""
    wstart = max(text.rfind(";", 0, brace), text.rfind("}", 0, brace),
                 text.rfind("{", 0, brace), 0)
    window = text[wstart:brace]
    m = re.search(r"\b(class|struct|union|enum|namespace)\b", window)
    if not m:
        return "block", ""
    kw = m.group(1)
    names = re.findall(r"[A-Za-z_]\w*", window[m.end():])
    names = [x for x in names
             if x not in ("final", "public", "private", "protected", "alignas",
                          "class", "struct")]
    return kw, names[0] if names else ""


class TextFrontend:
    name = "text"

    def __init__(self, root: str, src_dirs, verbose=False):
        self.root = root
        self.src_dirs = src_dirs
        self.verbose = verbose

    def scan(self):
        funcs, files = [], []
        for d in self.src_dirs:
            base = os.path.join(self.root, d)
            for dirpath, _, names in sorted(os.walk(base)):
                for fname in sorted(names):
                    if not fname.endswith((".h", ".cpp", ".cc", ".hpp")):
                        continue
                    p = os.path.join(dirpath, fname)
                    rel = os.path.relpath(p, self.root)
                    files.append(rel)
                    fns, _ = parse_text_file(p, rel)
                    funcs.extend(fns)
        return funcs, files


# --------------------------------------------------------------------------
# Clang frontend (libclang): precise definitions, annotations, and calls
# --------------------------------------------------------------------------


def _find_libclang(cindex):
    if cindex.Config.loaded:
        return
    env = os.environ.get("MCDC_LIBCLANG")
    candidates = [env] if env else []
    for ver in ("", "-18", "-17", "-16", "-15", "-14", "-13"):
        candidates += [f"/usr/lib/llvm{ver}/lib/libclang{ver}.so",
                       f"/usr/lib/x86_64-linux-gnu/libclang{ver}.so",
                       f"/usr/lib/x86_64-linux-gnu/libclang{ver}.so.1"]
    candidates += ["libclang.so"]
    for c in candidates:
        if c and os.path.exists(c):
            cindex.Config.set_library_file(c)
            return


class ClangFrontend:
    name = "clang"

    def __init__(self, root, src_dirs, compile_commands=None, extra_args=(),
                 verbose=False):
        import clang.cindex as cindex  # noqa: raises ImportError upstream
        _find_libclang(cindex)
        self.cindex = cindex
        self.index = cindex.Index.create()
        self.root = root
        self.src_dirs = src_dirs
        self.compile_commands = compile_commands
        self.extra_args = list(extra_args)
        self.verbose = verbose

    def _tu_args(self, path):
        args = ["-x", "c++", "-std=c++20", f"-I{self.root}/src"]
        if self.compile_commands and os.path.exists(self.compile_commands):
            try:
                with open(self.compile_commands) as f:
                    for entry in json.load(f):
                        if os.path.realpath(entry["file"]) == \
                                os.path.realpath(path):
                            raw = entry.get("arguments") or \
                                entry.get("command", "").split()
                            args = [a for a in raw[1:]
                                    if a not in ("-c", "-o") and
                                    not a.endswith((".cpp", ".o"))]
                            break
            except (OSError, ValueError, KeyError):
                pass
        return args + self.extra_args

    def scan(self):
        funcs, files = [], []
        paths = []
        for d in self.src_dirs:
            base = os.path.join(self.root, d)
            for dirpath, _, names in sorted(os.walk(base)):
                for fname in sorted(names):
                    if fname.endswith((".cpp", ".cc")):
                        paths.append(os.path.join(dirpath, fname))
        # Headers with no TU of their own still need scanning: parse each
        # header standalone as C++ (cheap at this tree size).
        for d in self.src_dirs:
            base = os.path.join(self.root, d)
            for dirpath, _, names in sorted(os.walk(base)):
                for fname in sorted(names):
                    if fname.endswith((".h", ".hpp")):
                        paths.append(os.path.join(dirpath, fname))
        seen_defs = set()
        for p in paths:
            rel = os.path.relpath(p, self.root)
            files.append(rel)
            try:
                tu = self.index.parse(p, args=self._tu_args(p))
            except self.cindex.TranslationUnitLoadError:
                continue
            with open(p, encoding="utf-8", errors="replace") as f:
                clean, allows = strip_comments_and_strings(f.read())
            for cur in tu.cursor.walk_preorder():
                if cur.kind.name not in ("FUNCTION_DECL", "CXX_METHOD",
                                         "CONSTRUCTOR", "DESTRUCTOR",
                                         "FUNCTION_TEMPLATE"):
                    continue
                if not cur.is_definition():
                    continue
                loc = cur.location
                if loc.file is None:
                    continue
                lrel = os.path.relpath(loc.file.name, self.root)
                if lrel != rel:
                    continue  # only definitions in this file
                key = (lrel, loc.line, cur.spelling)
                if key in seen_defs:
                    continue
                seen_defs.add(key)
                parent = cur.semantic_parent
                scope = []
                while parent is not None and parent.kind.name in (
                        "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
                        "NAMESPACE"):
                    if parent.kind.name != "NAMESPACE" and parent.spelling:
                        scope.append(parent.spelling)
                    parent = parent.semantic_parent
                qual = "::".join(reversed(scope + [cur.spelling])) \
                    if scope else cur.spelling
                fn = Func(name=qual, bare=cur.spelling, file=lrel,
                          line=loc.line)
                for ch in cur.get_children():
                    if ch.kind.name == "ANNOTATE_ATTR" and \
                            ch.spelling in ATTR_TAGS:
                        fn.annotations.add(ATTR_TAGS[ch.spelling])
                ext = cur.extent
                body = _extent_text(clean, ext)
                if body is not None:
                    fn.facts, calls_txt = extract_facts(
                        body, lrel, ext.start.line)
                    fn.facts = [
                        fa for fa in fn.facts
                        if fa.kind.rstrip("?") not in allows.get(fa.line,
                                                                 set())
                    ]
                    fn.calls = calls_txt
                # Precise call edges from the AST complement textual ones.
                for sub in cur.walk_preorder():
                    if sub.kind.name == "CALL_EXPR" and sub.referenced:
                        fn.calls.append((sub.referenced.spelling, lrel,
                                         sub.location.line))
                funcs.append(fn)
        return funcs, sorted(set(files))


def _extent_text(clean: str, extent):
    lines = clean.split("\n")
    s, e = extent.start.line - 1, extent.end.line
    if s < 0 or e > len(lines):
        return None
    return "\n".join(lines[s:e])


# --------------------------------------------------------------------------
# Rule engine
# --------------------------------------------------------------------------


class Analyzer:
    def __init__(self, funcs, verbose=False):
        self.funcs = funcs
        self.by_name = {}
        self.verbose = verbose
        for f in funcs:
            self.by_name.setdefault(f.bare, []).append(f)
            if "::" in f.name:
                self.by_name.setdefault(f.name, []).append(f)

    def resolve(self, name):
        if name in self.by_name:
            return self.by_name[name]
        return self.by_name.get(name.rsplit("::", 1)[-1], [])

    def _closure(self, root, stop_tag=None):
        """BFS over the call graph from `root`; yields (func, path) where
        path is the chain of function names from the root."""
        seen = {id(root)}
        queue = [(root, [root.name])]
        while queue:
            fn, path = queue.pop(0)
            yield fn, path
            for cname, _, _ in fn.calls:
                for callee in self.resolve(cname):
                    if id(callee) in seen:
                        continue
                    if stop_tag and stop_tag in callee.annotations:
                        continue  # escape hatch: don't descend
                    seen.add(id(callee))
                    queue.append((callee, path + [callee.name]))

    def check_reachability(self, root_tag, fact_kinds, rule, stop_tag=None):
        out = []
        for root in self.funcs:
            if root_tag not in root.annotations:
                continue
            for fn, path in self._closure(root, stop_tag=stop_tag):
                for fact in fn.facts:
                    kind = fact.kind
                    if kind == "det?":
                        # call-like det facts: only when unresolvable as a
                        # project function (a project fn named time() is a
                        # call edge, not a clock).
                        if "det" not in fact_kinds:
                            continue
                        if self.resolve(fact.detail.rstrip("()")):
                            continue
                        kind = "det"
                    if kind not in fact_kinds:
                        continue
                    out.append(Violation(
                        rule=rule, file=fact.file, line=fact.line,
                        function=fn.name,
                        message=f"{fact.detail} in '{fn.name}' reachable "
                                f"from {root_tag.upper()} root "
                                f"'{root.name}'",
                        path=path if len(path) > 1 else []))
        return out

    def annotation_roots(self):
        roots = {tag: [] for tag in
                 ("no_alloc", "lock_free", "deterministic", "hot_path",
                  "alloc_ok")}
        for f in self.funcs:
            for tag in f.annotations:
                roots[tag].append(f"{f.name} ({f.file}:{f.line})")
        return roots


# --------------------------------------------------------------------------
# Layering: include DAG + header self-sufficiency
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"', re.MULTILINE)


def check_layering(root, src_dirs, layering=None):
    layering = layering or LAYERING
    out = []
    for d in src_dirs:
        base = os.path.join(root, d)
        for dirpath, _, names in sorted(os.walk(base)):
            for fname in sorted(names):
                if not fname.endswith((".h", ".hpp", ".cpp", ".cc")):
                    continue
                p = os.path.join(dirpath, fname)
                rel = os.path.relpath(p, root)
                relsrc = os.path.relpath(p, base)
                mod = os.path.dirname(relsrc).split(os.sep)[0]
                mod = "" if mod == "." else mod
                if mod not in layering:
                    continue  # unknown module: no contract yet
                with open(p, encoding="utf-8", errors="replace") as f:
                    text = f.read()
                _, allows = strip_comments_and_strings(text)
                for m in INCLUDE_RE.finditer(text):
                    inc = m.group(1)
                    imod = inc.split("/")[0] if "/" in inc else ""
                    if imod == mod or imod not in layering:
                        continue
                    line = line_of(text, m.start())
                    if "layering" in allows.get(line, set()):
                        continue
                    if imod not in layering[mod]:
                        out.append(Violation(
                            rule="layering", file=rel, line=line,
                            function="",
                            message=f"module '{mod or '<src root>'}' must "
                                    f"not include '{inc}' (allowed: "
                                    f"{sorted(layering[mod]) or 'nothing'})",
                            path=[]))
    return out


def check_headers_standalone(root, src_dirs, jobs=0):
    """Every header must compile on its own (self-sufficiency)."""
    cxx = os.environ.get("CXX") or shutil.which("c++") or \
        shutil.which("g++") or shutil.which("clang++")
    if cxx is None:
        return [], False
    headers = []
    for d in src_dirs:
        base = os.path.join(root, d)
        for dirpath, _, names in sorted(os.walk(base)):
            for fname in sorted(names):
                if fname.endswith((".h", ".hpp")):
                    p = os.path.join(dirpath, fname)
                    headers.append((os.path.relpath(p, root),
                                    os.path.relpath(p, base)))

    def probe(item):
        rel, relsrc = item
        with tempfile.NamedTemporaryFile("w", suffix=".cpp",
                                         delete=False) as tf:
            tf.write(f'#include "{relsrc}"\n')
            tmp = tf.name
        try:
            r = subprocess.run(
                [cxx, "-fsyntax-only", "-std=c++20", "-x", "c++",
                 f"-I{os.path.join(root, src_dirs[0])}", tmp],
                capture_output=True, text=True, timeout=60)
            if r.returncode != 0:
                first = (r.stderr or "?").strip().splitlines()
                return Violation(
                    rule="layering", file=rel, line=1, function="",
                    message="header is not self-sufficient: "
                            + (first[0] if first else "compile error"),
                    path=[])
        except (subprocess.TimeoutExpired, OSError):
            return None
        finally:
            os.unlink(tmp)
        return None

    workers = jobs or min(16, (os.cpu_count() or 2))
    with concurrent.futures.ThreadPoolExecutor(workers) as ex:
        results = list(ex.map(probe, headers))
    return [v for v in results if v is not None], True


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def make_frontend(kind, root, src_dirs, compile_commands, extra_args,
                  verbose):
    if kind in ("clang", "auto"):
        try:
            fe = ClangFrontend(root, src_dirs,
                               compile_commands=compile_commands,
                               extra_args=extra_args, verbose=verbose)
            # Trial parse so `auto` can fall back on broken installs.
            fe.index.parse("mcdc_lint_probe.cpp",
                           unsaved_files=[("mcdc_lint_probe.cpp",
                                           "int main(){return 0;}")],
                           args=["-x", "c++"])
            return fe
        except Exception as e:  # noqa: BLE001 — any cindex failure
            if kind == "clang":
                print(f"mcdc-lint: libclang frontend unavailable: {e}",
                      file=sys.stderr)
                sys.exit(2)
            if verbose:
                print(f"mcdc-lint: libclang unavailable ({e}); "
                      "falling back to text frontend", file=sys.stderr)
    return TextFrontend(root, src_dirs, verbose=verbose)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="mcdc_lint.py",
        description="Prove the repo's standing invariants at source level.")
    default_root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    ap.add_argument("--root", default=default_root)
    ap.add_argument("--src", action="append", default=None,
                    help="source dir(s) relative to root (default: src)")
    ap.add_argument("--frontend", choices=("auto", "clang", "text"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--extra-arg", action="append", default=[],
                    help="extra compiler arg for the clang frontend")
    ap.add_argument("--report", default=None,
                    help="write the machine-readable JSON report here")
    ap.add_argument("--no-headers", action="store_true",
                    help="skip the header self-sufficiency probe")
    ap.add_argument("--require-roots", action="store_true",
                    help="fail unless every annotation has at least one "
                         "root (guards against annotations rotting away)")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    root = os.path.realpath(args.root)
    src_dirs = args.src or ["src"]
    cc = args.compile_commands
    if cc is None:
        for cand in ("build/compile_commands.json",
                     "build-werror/compile_commands.json"):
            if os.path.exists(os.path.join(root, cand)):
                cc = os.path.join(root, cand)
                break

    fe = make_frontend(args.frontend, root, src_dirs, cc, args.extra_arg,
                       args.verbose)
    funcs, files = fe.scan()
    an = Analyzer(funcs, verbose=args.verbose)

    violations = []
    violations += an.check_reachability("no_alloc", {"alloc"}, "alloc",
                                        stop_tag="alloc_ok")
    violations += an.check_reachability("lock_free", {"lock"}, "lock")
    violations += an.check_reachability("deterministic", {"det"}, "det")
    violations += an.check_reachability("deterministic", {"stamp"}, "stamp")
    violations += check_layering(root, src_dirs)
    headers_probed = False
    if not args.no_headers:
        hv, headers_probed = check_headers_standalone(root, src_dirs)
        violations += hv

    # Deduplicate (same rule+site reachable from several roots).
    uniq, seen = [], set()
    for v in sorted(violations, key=lambda v: (v.rule, v.file, v.line)):
        key = (v.rule, v.file, v.line, v.message)
        if key not in seen:
            seen.add(key)
            uniq.append(v)
    violations = uniq

    roots = an.annotation_roots()
    missing_roots = []
    if args.require_roots:
        for tag in ("no_alloc", "lock_free", "deterministic", "hot_path"):
            if not roots[tag]:
                missing_roots.append(tag)

    rule_counts = {r: 0 for r in RULES}
    for v in violations:
        rule_counts[v.rule] += 1

    report = {
        "tool": "mcdc-lint",
        "version": 1,
        "frontend": fe.name,
        "root": root,
        "files_scanned": len(files),
        "functions": len(funcs),
        "headers_probed": headers_probed,
        "annotation_roots": {k: sorted(v) for k, v in roots.items()},
        "missing_roots": missing_roots,
        "rules": rule_counts,
        "violations": [vars(v) for v in violations],
    }
    if args.report:
        os.makedirs(os.path.dirname(os.path.abspath(args.report)),
                    exist_ok=True)
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)

    for v in violations:
        print(v.render())
    for tag in missing_roots:
        print(f"mcdc-lint: no function carries {tag.upper()} — the "
              "annotations have rotted away (see src/util/annotate.h)")
    summary = ", ".join(f"{r}={rule_counts[r]}" for r in RULES)
    print(f"mcdc-lint[{fe.name}]: {len(files)} files, {len(funcs)} "
          f"functions, {sum(len(v) for v in roots.values())} annotations; "
          f"violations: {summary}")
    return 1 if violations or missing_roots else 0


if __name__ == "__main__":
    sys.exit(main())
